"""One function per paper figure: compute the measured series.

Each function returns ``(title, measured, paper)`` where ``measured`` and
``paper`` are benchmark -> value mappings (including an ``"average"``
entry for the measured series).  The benchmark files under
``benchmarks/`` call these and print paper-vs-measured tables; tests use
them to check the shape of the reproduction.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.analysis.harness import (
    EvaluationSettings,
    branch_mpki_metric,
    flush_stall_metric,
    llc_mpki_metric,
    run_figure_series,
    runtime_overhead_metric,
)
from repro.analysis.store import ResultStore
from repro.api.requests import FleetRequest, ScenarioRequest, ServiceRequest
from repro.api.session import coerce_session
from repro.core.mitigations import VariantLike, config_for_spec
from repro.core.variants import Variant
from repro.obs.export import trace_spans
from repro.service.simulation import (
    DEFAULT_SERVICE_CORES,
    DEFAULT_SERVICE_INSTRUCTIONS,
    DEFAULT_SERVICE_REQUESTS,
    DEFAULT_SERVICE_TENANTS,
)
from repro.workloads.characteristics import PAPER_REPORTED

FigureResult = Tuple[str, Dict[str, float], Dict[str, float]]


def _paper_series(field: str) -> Dict[str, float]:
    series = {name: getattr(values, field) for name, values in PAPER_REPORTED.items()}
    series["average"] = sum(series.values()) / len(series)
    return series


def figure04_configuration() -> str:
    """Figure 4: the BASE configuration table."""
    return config_for_spec(Variant.BASE).describe()


def figure05_flush_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 5: FLUSH execution-time overhead vs BASE."""
    measured = run_figure_series(Variant.FLUSH, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 5: FLUSH runtime overhead (%)", measured, _paper_series("flush_overhead_pct")


def figure06_flush_stall(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 6: stall time waiting for flushes, normalised to BASE time."""
    measured = run_figure_series(Variant.FLUSH, flush_stall_metric, settings, jobs=jobs, store=store)
    return "Figure 6: flush stall time (% of BASE)", measured, _paper_series("flush_stall_pct")


def figure07_branch_mpki(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Tuple[str, Dict[str, float], Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Figure 7: branch MPKI for BASE and FLUSH (measured and paper)."""
    measured_base = run_figure_series(Variant.BASE, branch_mpki_metric, settings, jobs=jobs, store=store)
    measured_flush = run_figure_series(Variant.FLUSH, branch_mpki_metric, settings, jobs=jobs, store=store)
    return (
        "Figure 7: branch mispredictions per 1K instructions",
        measured_base,
        measured_flush,
        _paper_series("branch_mpki_base"),
        _paper_series("branch_mpki_flush"),
    )


def figure08_part_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 8: LLC set-partitioning overhead vs BASE."""
    measured = run_figure_series(Variant.PART, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 8: PART runtime overhead (%)", measured, _paper_series("part_overhead_pct")


def figure09_llc_mpki(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Tuple[str, Dict[str, float], Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Figure 9: LLC MPKI for BASE and PART (measured and paper)."""
    measured_base = run_figure_series(Variant.BASE, llc_mpki_metric, settings, jobs=jobs, store=store)
    measured_part = run_figure_series(Variant.PART, llc_mpki_metric, settings, jobs=jobs, store=store)
    return (
        "Figure 9: LLC misses per 1K instructions",
        measured_base,
        measured_part,
        _paper_series("llc_mpki_base"),
        _paper_series("llc_mpki_part"),
    )


def figure10_mshr_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 10: MSHR partitioning/sizing overhead vs BASE."""
    measured = run_figure_series(Variant.MISS, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 10: MISS runtime overhead (%)", measured, _paper_series("miss_overhead_pct")


def figure11_arbiter_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 11: LLC round-robin arbiter overhead vs BASE."""
    measured = run_figure_series(Variant.ARB, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 11: ARB runtime overhead (%)", measured, _paper_series("arb_overhead_pct")


def figure12_nonspec_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 12: non-speculative execution overhead vs BASE."""
    measured = run_figure_series(Variant.NONSPEC, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 12: NONSPEC runtime overhead (%)", measured, _paper_series("nonspec_overhead_pct")


def figure13_overall_overhead(
    settings: Optional[EvaluationSettings] = None,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 13: F+P+M+A (enclave steady-state) overhead vs BASE."""
    measured = run_figure_series(Variant.F_P_M_A, runtime_overhead_metric, settings, jobs=jobs, store=store)
    return "Figure 13: F+P+M+A runtime overhead (%)", measured, _paper_series("overall_overhead_pct")


#: Title of the security evaluation's leakage table.
SECURITY_TABLE_TITLE = "Security scenarios: leaked bits (recovered/at stake)"


def aggregate_leakage_rows(outcomes) -> Dict[str, Dict[str, str]]:
    """Fold :class:`ScenarioOutcome` values into table rows.

    Leaked/total bit counts are summed over seeds per (scenario,
    variant) cell; the result maps scenario name -> variant name ->
    ``"leaked/total"``.  Used by :func:`security_leakage_table` and by
    the CLI, which already holds the outcomes from its own sweep.
    """
    tallies: Dict[str, Dict[str, list]] = {}
    for outcome in outcomes:
        cell = tallies.setdefault(outcome.scenario, {}).setdefault(
            outcome.variant, [0, 0]
        )
        cell[0] += outcome.leaked_bits
        cell[1] += outcome.total_bits
    return {
        scenario: {
            variant: f"{leaked}/{total}" for variant, (leaked, total) in cells.items()
        }
        for scenario, cells in tallies.items()
    }


#: Title of the enclave-serving latency table.
SERVICE_TABLE_TITLE = "Enclave serving: latency and boundary-cost shares (policy x variant x load)"


def service_latency_rows(outcomes) -> list:
    """Flatten :class:`ServiceOutcome` values into latency-table rows.

    One row per outcome, in expansion order, with the fields
    :func:`repro.analysis.report.format_service_table` renders; the
    flush/purge shares are fractions of fleet busy time.  Used by
    :func:`service_latency_table` and by the CLI, which already holds
    the outcomes from its own sweep.
    """
    rows = []
    for outcome in outcomes:
        busy = sum(row["busy_cycles"] for row in outcome.per_core)
        rows.append(
            {
                "policy": outcome.policy,
                "variant": outcome.variant,
                "load": outcome.load,
                "seed": outcome.seed,
                "p50": outcome.latency["p50"],
                "p95": outcome.latency["p95"],
                "p99": outcome.latency["p99"],
                "mean": outcome.latency["mean"],
                "throughput_rpmc": outcome.throughput_rpmc,
                "utilization": outcome.utilization,
                "purge_share": outcome.charged_purge_cycles / busy if busy else 0.0,
                "flush_share": outcome.charged_flush_cycles / busy if busy else 0.0,
                "switches": outcome.switches,
                "affinity_hits": outcome.affinity_hits,
            }
        )
    return rows


def service_latency_table(
    settings: Optional[EvaluationSettings] = None,
    *,
    policies: Optional[Tuple[str, ...]] = None,
    variants: Optional[Tuple[VariantLike, ...]] = None,
    loads: Optional[Tuple[float, ...]] = None,
    seeds: Optional[Tuple[int, ...]] = None,
    load_profile: str = "poisson",
    num_cores: int = DEFAULT_SERVICE_CORES,
    num_tenants: int = DEFAULT_SERVICE_TENANTS,
    requests: int = DEFAULT_SERVICE_REQUESTS,
    instructions: int = DEFAULT_SERVICE_INSTRUCTIONS,
    churn_every: int = 0,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Tuple[str, list]:
    """Serving evaluation: tail latency per scheduling policy × variant.

    Runs the enclave-serving sweep through the Session API — per-request
    cycle costs and serving outcomes are both served from the session's
    store when warm — and flattens the outcomes into the rows
    :func:`repro.analysis.report.format_service_table` renders.  This is
    the figure the paper doesn't have: its per-switch purge/flush costs
    expressed as p95/p99 request latency under open-loop load.
    """
    settings = settings or EvaluationSettings.from_environment()
    session = coerce_session(store, jobs)
    result = session.run(
        ServiceRequest(
            policies=policies,
            variants=variants,
            loads=loads,
            seeds=seeds if seeds is not None else (settings.seed,),
            load_profile=load_profile,
            num_cores=num_cores,
            num_tenants=num_tenants,
            requests=requests,
            instructions=instructions,
            churn_every=churn_every,
        )
    )
    return SERVICE_TABLE_TITLE, service_latency_rows(result.service_outcomes)


FLEET_TABLE_TITLE = (
    "Fleet serving: goodput vs offered load (variant x load, sharded fleet)"
)


def fleet_goodput_rows(outcomes) -> list:
    """Flatten :class:`FleetOutcome` values into goodput-table rows.

    One row per outcome, in expansion order, with the fields
    :func:`repro.analysis.report.format_fleet_table` renders: offered
    load, goodput/throughput (requests per million cycles), tail
    latency, fleet utilization, and the admission-control counters
    (queue-full drops, deadline rejections, deadline misses).
    """
    rows = []
    for outcome in outcomes:
        rows.append(
            {
                "variant": outcome.variant,
                "router": outcome.router,
                "admission": outcome.admission,
                "client": outcome.client_model,
                "load": outcome.load,
                "seed": outcome.seed,
                "offered": outcome.offered,
                "admitted": outcome.admitted,
                "completed": outcome.completed,
                "goodput_rpmc": outcome.goodput_rpmc,
                "throughput_rpmc": outcome.throughput_rpmc,
                "p50": outcome.latency["p50"],
                "p95": outcome.latency["p95"],
                "p99": outcome.latency["p99"],
                "utilization": outcome.utilization,
                "dropped_queue_full": outcome.dropped_queue_full,
                "rejected_deadline": outcome.rejected_deadline,
                "deadline_misses": outcome.deadline_misses,
            }
        )
    return rows


def fleet_saturation_points(rows) -> Dict[str, float]:
    """Measured saturation point per variant from goodput-table rows.

    The saturation point of a variant is the offered load at which its
    goodput peaks over the sweep — past it, extra offered load only
    grows queueing, drops, and deadline misses.  Rows must come from a
    load sweep (:func:`fleet_goodput_rows` output); ties resolve to the
    lowest such load.
    """
    best: Dict[str, Tuple[float, float]] = {}
    for row in rows:
        variant = row["variant"]
        candidate = (row["goodput_rpmc"], -row["load"])
        if variant not in best or candidate > best[variant]:
            best[variant] = candidate
    return {variant: -negative_load for variant, (_, negative_load) in best.items()}


def fleet_goodput_table(
    settings: Optional[EvaluationSettings] = None,
    *,
    variants: Optional[Tuple[VariantLike, ...]] = None,
    loads: Optional[Tuple[float, ...]] = None,
    seeds: Optional[Tuple[int, ...]] = None,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    **fleet_fields,
) -> Tuple[str, list]:
    """Fleet evaluation: goodput vs offered load per mitigation variant.

    Runs the sharded fleet-serving sweep through the Session API —
    per-request cycle costs, shard outcomes, and merged fleet documents
    are all served from the session's store when warm — and flattens the
    outcomes into the rows :func:`repro.analysis.report.format_fleet_table`
    renders.  Keyword fleet fields (``router``, ``admission``,
    ``num_shards``, ...) pass through to :class:`FleetRequest`.
    """
    settings = settings or EvaluationSettings.from_environment()
    session = coerce_session(store, jobs)
    result = session.run(
        FleetRequest(
            variants=variants,
            loads=loads,
            seeds=seeds if seeds is not None else (settings.seed,),
            **fleet_fields,
        )
    )
    return FLEET_TABLE_TITLE, fleet_goodput_rows(result.fleet_outcomes)


#: Title of the trace latency-breakdown table (``repro trace summary``).
BREAKDOWN_TABLE_TITLE = "Trace latency breakdown: time per phase (category x span name)"


def _percentile(sorted_values: list, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


def latency_breakdown_rows(document: Dict, *, category: Optional[str] = None) -> list:
    """Fold a Chrome-trace document into per-phase latency rows.

    Groups the complete (``ph == "X"``) events by ``(category, name)``
    and summarises each group's durations: count, total, mean, p50,
    p95, max, and the group's share of its category's total time.
    Durations stay in the trace's native units — simulated cycles for
    ``sim`` spans, microseconds for ``wall`` spans — so the two
    categories are never summed together.  ``category`` restricts the
    rows (``"sim"`` or ``"wall"``); rows sort by descending total
    within each category.
    """
    groups: Dict[Tuple[str, str], list] = {}
    for event in trace_spans(document):
        cat = str(event.get("cat", ""))
        if category is not None and cat != category:
            continue
        duration = event.get("dur", 0.0)
        if isinstance(duration, bool) or not isinstance(duration, (int, float)):
            continue
        groups.setdefault((cat, str(event.get("name", ""))), []).append(
            float(duration)
        )
    category_totals: Dict[str, float] = {}
    for (cat, _), durations in groups.items():
        category_totals[cat] = category_totals.get(cat, 0.0) + sum(durations)
    rows = []
    for (cat, name), durations in sorted(
        groups.items(), key=lambda item: (item[0][0], -sum(item[1]), item[0][1])
    ):
        durations = sorted(durations)
        total = sum(durations)
        rows.append(
            {
                "category": cat,
                "phase": name,
                "count": len(durations),
                "total": total,
                "mean": total / len(durations),
                "p50": _percentile(durations, 0.50),
                "p95": _percentile(durations, 0.95),
                "max": durations[-1],
                "share": total / category_totals[cat] if category_totals[cat] else 0.0,
            }
        )
    return rows


def latency_breakdown_table(
    document: Dict, *, category: Optional[str] = None
) -> Tuple[str, list]:
    """The ``repro trace summary`` table: ``(title, rows)``.

    ``document`` is a loaded Chrome-trace-event document (from
    :func:`repro.obs.export.load_trace`); rows go to
    :func:`repro.analysis.report.format_breakdown_table`.
    """
    return BREAKDOWN_TABLE_TITLE, latency_breakdown_rows(document, category=category)


def security_leakage_table(
    settings: Optional[EvaluationSettings] = None,
    *,
    scenarios: Optional[Tuple[str, ...]] = None,
    variants: Optional[Tuple[VariantLike, ...]] = None,
    seeds: Optional[Tuple[int, ...]] = None,
    num_cores: int = 2,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Tuple[str, Dict[str, Dict[str, str]]]:
    """Section 6 security evaluation: leaked bits per scenario × variant.

    Runs every co-scheduled attack scenario on every requested variant
    (BASE vs F+P+M+A by default, arbitrary mitigation combinations
    accepted) through the Session API — warm results come from the
    session's store — and aggregates leaked/total bit counts over the
    seeds.  Returns ``(title, rows)`` as consumed by
    :func:`repro.analysis.report.format_security_table`.
    """
    settings = settings or EvaluationSettings.from_environment()
    session = coerce_session(store, jobs)
    result = session.run(
        ScenarioRequest(
            scenarios=scenarios,
            variants=variants,
            seeds=seeds if seeds is not None else (settings.seed,),
            num_cores=num_cores,
        )
    )
    return SECURITY_TABLE_TITLE, aggregate_leakage_rows(result.outcomes)
