"""Shared parse/symbol pass, rule registry, and the lint driver.

Every rule consumes the same :class:`LintContext`: each source file is
read, parsed, and scanned for suppressions exactly once, and rules see
the whole module set at once (the cache-key and registry rules are
cross-module by nature).  Rules register themselves at import time via
:func:`register_rule` — the same import-time-registry contract the
``registry-hygiene`` rule enforces on the simulator's own registries.

Suppressions are inline comments of the form::

    counter = policy._rng._random  # repro: allow[determinism]: sanctioned tap

A finding is suppressed when the annotation names its rule (or ``*``)
and sits on the flagged line, the line directly above it, or in a
comment block whose first code line is the flagged line.  The
justification after the colon is optional but encouraged; EXPERIMENTS.md
documents the catalog.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.findings import SEVERITY_ERROR, Finding

#: Inline-suppression comment, e.g. ``# repro: allow[determinism]: why``.
_ALLOW_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_*,\- ]+)\](?::\s*(?P<why>.*))?"
)


@dataclass
class SourceModule:
    """One parsed source file plus its per-line suppression map."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Set[str]]
    imports: Dict[str, str] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when an allow annotation covers ``rule`` at ``line``."""
        for candidate in (line, line - 1):
            allowed = self.suppressions.get(candidate)
            if allowed is not None and (rule in allowed or "*" in allowed):
                return True
        return False

    def path_matches(self, *suffixes: str) -> bool:
        """True when the module's posix path ends with any suffix."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def in_package(self, *packages: str) -> bool:
        """True when the path contains ``repro/<package>/`` for any name."""
        return any(f"repro/{package}/" in self.relpath for package in packages)


@dataclass
class LintContext:
    """Everything a rule may consult: the fully parsed module set."""

    modules: List[SourceModule]

    def module_at(self, *suffixes: str) -> Optional[SourceModule]:
        """The first module whose path ends with any of ``suffixes``."""
        for module in self.modules:
            if module.path_matches(*suffixes):
                return module
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``name``/``description`` and implement :meth:`check`,
    yielding findings over the whole context.  Suppressions and the
    baseline are applied by the driver, not by rules.
    """

    name: str = ""
    description: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        *,
        severity: str = SEVERITY_ERROR,
    ) -> Finding:
        """A finding of this rule anchored at ``node`` in ``module``."""
        return Finding(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            severity=severity,
        )


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule instance under its name (import-time only)."""
    if not rule.name:
        raise ValueError("rule name must be non-empty")
    if rule.name in _RULES:
        raise ValueError(f"lint rule {rule.name!r} already registered")
    _RULES[rule.name] = rule
    return rule


def rule_names() -> List[str]:
    """All registered rule names, in registration order."""
    return list(_RULES)


def rule_descriptions() -> Dict[str, str]:
    """Rule name -> one-line description, in registration order."""
    return {name: rule.description for name, rule in _RULES.items()}


# ----------------------------------------------------------------------
# Parse pass


def _scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        match = _ALLOW_PATTERN.search(line)
        if match is None:
            continue
        names = {name.strip() for name in match.group("rules").split(",")}
        names = {name for name in names if name}
        suppressions.setdefault(number, set()).update(names)
        # A comment-only annotation covers the whole comment block it
        # opens: extend through following comment/blank lines onto the
        # first code line, so multi-line justifications above a statement
        # (or a decorated ``def``) still suppress the finding there.
        if line.lstrip().startswith("#"):
            cursor = number
            while cursor < len(lines):
                cursor += 1
                stripped = lines[cursor - 1].strip()
                suppressions.setdefault(cursor, set()).update(names)
                if stripped and not stripped.startswith("#"):
                    break
    return suppressions


def _scan_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted module, for plain and from-imports."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def parse_module(path: Path, relpath: str) -> SourceModule:
    """Read, parse, and index one source file (the shared pass)."""
    text = path.read_text()
    tree = ast.parse(text, filename=str(path))
    lines = text.splitlines()
    module = SourceModule(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        lines=lines,
        suppressions=_scan_suppressions(lines),
    )
    module.imports = _scan_imports(tree)
    return module


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through), sorted."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return found


def build_context(paths: Sequence[Path], *, root: Optional[Path] = None) -> LintContext:
    """Parse every file under ``paths`` into a :class:`LintContext`.

    ``root`` anchors the repo-relative paths findings report (defaults
    to the current working directory; files outside it keep their full
    posix path).
    """
    base = (root or Path.cwd()).resolve()
    modules: List[SourceModule] = []
    for file_path in collect_files(paths):
        resolved = file_path.resolve()
        try:
            relpath = resolved.relative_to(base).as_posix()
        except ValueError:
            relpath = resolved.as_posix()
        modules.append(parse_module(resolved, relpath))
    return LintContext(modules=modules)


# ----------------------------------------------------------------------
# Driver


@dataclass
class LintReport:
    """Outcome of one lint run, after suppressions and the baseline."""

    findings: List[Finding]
    suppressed: int
    baselined: int
    rules: List[str]

    @property
    def gating(self) -> List[Finding]:
        """Findings that fail the run (``error`` severity only)."""
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]


def run_rules(
    context: LintContext,
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: FrozenSet[str] = frozenset(),
) -> LintReport:
    """Run the selected rules over ``context``.

    Unknown rule names raise ``ValueError``; suppressed findings and
    findings fingerprint-matched by ``baseline`` are counted but not
    reported.
    """
    selected = list(rules) if rules is not None else rule_names()
    unknown = [name for name in selected if name not in _RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)} "
            f"(expected: {', '.join(rule_names())})"
        )
    by_path = {module.relpath: module for module in context.modules}
    kept: List[Finding] = []
    suppressed = 0
    baselined = 0
    for name in selected:
        for finding in _RULES[name].check(context):
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            elif finding.fingerprint() in baseline:
                baselined += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return LintReport(
        findings=kept, suppressed=suppressed, baselined=baselined, rules=selected
    )
