"""Registry hygiene rule: registrations at import time, in the owner.

The scheduler/mitigation/scenario/arrival-profile registries (and this
package's own rule registry) give every subsystem an open extension
point, but the engine's determinism story assumes the registries are
*identical in every process*: a registration that happens conditionally,
lazily, or from a surprising module can make a pool worker see a
different registry than the parent — and a sweep's expansion or a cached
entry's meaning would change with it.  This rule pins the contract:

* a ``register_*`` call must be a top-level statement of its module —
  never inside ``if``/``try``/``for``/``while``, a function, or a class
  body — so importing the module *is* the registration;
* the shipped registries may only be populated from their owning module
  (:data:`OWNING_MODULES`); third-party extension modules registering
  their own entries are out of scope because only ``src/repro`` is
  linted in CI.

It also guards the registry's *consumers*: the legacy ``Variant`` enum
shims (:data:`LEGACY_SHIMS`) exist so old call sites, cached results,
and public imports keep working — but new internal code must go through
the mitigation registry (``parse_spec``/``config_for_spec``), so a call
to a shim anywhere outside its owning compatibility module is a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.lint.engine import LintContext, Rule, SourceModule, register_rule
from repro.lint.findings import Finding

#: Registrar name -> path suffixes of the modules allowed to call it.
OWNING_MODULES: Dict[str, Tuple[str, ...]] = {
    "register_policy": ("repro/service/schedulers.py",),
    "register_scenario": ("repro/attacks/scenarios.py",),
    "register_mitigation": ("repro/core/mitigations.py",),
    "register_composition": ("repro/core/mitigations.py",),
    "register_arrival_profile": ("repro/service/arrivals.py",),
    "register_router": ("repro/fleet/routing.py",),
    "register_admission_policy": ("repro/fleet/admission.py",),
    "register_client_model": ("repro/fleet/clients.py",),
    "register_rule": ("repro/lint/",),
}

#: Legacy shim name -> (owning compatibility modules, modern replacement).
#: The shims stay importable forever (cached cache keys and public API
#: promises flow through them), but calls from new internal code belong
#: on the mitigation-registry path.
LEGACY_SHIMS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "parse_variant": (
        ("repro/core/variants.py",),
        "repro.core.mitigations.parse_spec",
    ),
    "config_for_variant": (
        ("repro/core/variants.py",),
        "repro.core.mitigations.config_for_spec",
    ),
}


def _registrar_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _module_owns(module: SourceModule, suffixes: Tuple[str, ...]) -> bool:
    anchored = f"/{module.relpath}"
    for suffix in suffixes:
        if suffix.endswith("/"):
            if f"/{suffix}" in anchored:
                return True
        elif module.relpath.endswith(suffix):
            return True
    return False


class RegistryHygieneRule(Rule):
    name = "registry-hygiene"
    description = (
        "register_* calls happen at import time, top-level, in the "
        "registry's owning module; legacy variant shims are not called "
        "from new internal code"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for module in context.modules:
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        top_level_calls = set()
        for statement in module.tree.body:
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Call
            ):
                top_level_calls.add(id(statement.value))
            # ``RULE = register_rule(SomeRule())`` style bindings are
            # also import-time registrations.
            if isinstance(statement, ast.Assign) and isinstance(
                statement.value, ast.Call
            ):
                top_level_calls.add(id(statement.value))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _registrar_name(node)
            if name in LEGACY_SHIMS:
                shim_owners, replacement = LEGACY_SHIMS[name]
                if not _module_owns(module, shim_owners):
                    yield self.finding(
                        module,
                        node,
                        f"{name}() is a legacy variant shim: new internal "
                        f"code must use {replacement} (the mitigation-"
                        "registry path)",
                    )
                continue
            if name not in OWNING_MODULES:
                continue
            owners = OWNING_MODULES[name]
            if not _module_owns(module, owners):
                yield self.finding(
                    module,
                    node,
                    f"{name}() called outside its owning module "
                    f"({', '.join(owners)}): registrations must live where "
                    "the registry does, so every process imports the same set",
                )
            elif id(node) not in top_level_calls:
                yield self.finding(
                    module,
                    node,
                    f"{name}() must be an unconditional top-level statement: "
                    "conditional or lazy registration can desynchronise the "
                    "registry across pool workers",
                )


register_rule(RegistryHygieneRule())
