"""Fast/slow parity rule: every fast lane keeps its reference twin.

The kernel's speed comes from fast lanes (``*_fast`` methods and
``*_slab`` storage paths) that must stay bit-identical to the reference
implementation preserved behind ``REPRO_SLOW_PATH=1``.  The equivalence
suite compares *outputs*; this rule checks the *structure* that makes the
comparison meaningful in every module importing
:mod:`repro.common.fastpath`:

* the module must actually consult :func:`slow_path_enabled` — an import
  without a dispatch point means a lane lost its escape hatch;
* every ``*_fast`` lane needs a ``*_reference`` twin (and every
  ``*_slab`` lane its un-suffixed public twin) defined in the same
  class or module scope, and the twin must be reachable — referenced by
  a dispatcher, or the public default the fast lane overrides;
* counter/histogram names registered on a fast lane must be a subset of
  its reference twin's, so the statistics a fast run reports can never
  include a counter the oracle path cannot produce (f-string names are
  compared with their interpolations normalised to ``{}``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import LintContext, Rule, SourceModule, register_rule
from repro.lint.findings import Finding

#: Module whose import marks a file as carrying fast/slow lanes.
FASTPATH_MODULE = "repro.common.fastpath"

#: The dispatch predicate fast lanes must be gated on.
DISPATCH_NAME = "slow_path_enabled"

_FAST_SUFFIX = "_fast"
_SLAB_SUFFIX = "_slab"


@dataclass
class _Lane:
    """One function definition, qualified by its enclosing class."""

    node: ast.FunctionDef
    scope: str  # enclosing class name, or "" at module level

    @property
    def name(self) -> str:
        return self.node.name


def _imports_fastpath(module: SourceModule) -> bool:
    return any(
        target == FASTPATH_MODULE or target.startswith(f"{FASTPATH_MODULE}.")
        for target in module.imports.values()
    )


def _collect_lanes(tree: ast.Module) -> List[_Lane]:
    lanes: List[_Lane] = []

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, ast.FunctionDef):
                lanes.append(_Lane(node=child, scope=scope))
                # Nested defs keep the enclosing scope; the twin of a
                # nested fast lane must live beside it.
                visit(child, scope)
            else:
                visit(child, scope)

    visit(tree, "")
    return lanes


def _referenced_names(tree: ast.Module, *, outside: ast.FunctionDef) -> Set[str]:
    """Every Name/Attribute identifier used outside ``outside``'s body."""
    skip = set()
    for node in ast.walk(outside):
        skip.add(id(node))
    names: Set[str] = set()
    for node in ast.walk(tree):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _twin_candidates(name: str) -> List[str]:
    if name.endswith(_FAST_SUFFIX):
        base = name[: -len(_FAST_SUFFIX)]
        return [f"{base}_reference", f"{base}_slow", base.lstrip("_")]
    base = name[: -len(_SLAB_SUFFIX)]
    return [base.lstrip("_"), f"{base}_reference"]


def _counter_names(function: ast.FunctionDef) -> Set[str]:
    """Normalised counter/histogram name literals registered in a lane."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("counter", "histogram")
            and node.args
        ):
            literal = _normalise_literal(node.args[0])
            if literal is not None:
                names.add(literal)
    return names


def _normalise_literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("{}")
        return "".join(parts)
    return None


class FastpathParityRule(Rule):
    name = "fastpath-parity"
    description = (
        "every *_fast/*_slab lane pairs with a reachable reference lane "
        "whose counters cover the fast lane's"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for module in context.modules:
            if module.path_matches("repro/common/fastpath.py"):
                continue
            if not _imports_fastpath(module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        lanes = _collect_lanes(module.tree)
        by_scope: Dict[Tuple[str, str], _Lane] = {
            (lane.scope, lane.name): lane for lane in lanes
        }
        all_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                all_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                all_names.add(node.attr)
        if DISPATCH_NAME not in all_names:
            yield self.finding(
                module,
                module.tree.body[0] if module.tree.body else module.tree,
                f"imports {FASTPATH_MODULE} but never consults "
                f"{DISPATCH_NAME}(): fast lanes here have no reference "
                "dispatch point",
            )
        for lane in lanes:
            if not (
                lane.name.endswith(_FAST_SUFFIX) or lane.name.endswith(_SLAB_SUFFIX)
            ):
                continue
            twin = self._find_twin(lane, by_scope)
            if twin is None:
                yield self.finding(
                    module,
                    lane.node,
                    f"fast lane {lane.name!r} has no reference twin "
                    f"({' / '.join(_twin_candidates(lane.name))}) in scope "
                    f"{lane.scope or 'module'}; every fast lane must keep "
                    "the REPRO_SLOW_PATH oracle alive",
                )
                continue
            if not self._twin_reachable(module, lane, twin):
                yield self.finding(
                    module,
                    twin.node,
                    f"reference lane {twin.name!r} is never dispatched to: "
                    f"no reference outside its own body selects it, so the "
                    "slow path cannot reach it",
                )
            extra = sorted(
                _counter_names(lane.node) - _counter_names(twin.node)
            )
            if extra:
                yield self.finding(
                    module,
                    lane.node,
                    f"fast lane {lane.name!r} registers counters absent from "
                    f"reference lane {twin.name!r}: {', '.join(extra)}",
                )

    @staticmethod
    def _find_twin(
        lane: _Lane, by_scope: Dict[Tuple[str, str], _Lane]
    ) -> Optional[_Lane]:
        for candidate in _twin_candidates(lane.name):
            twin = by_scope.get((lane.scope, candidate))
            if twin is not None and twin.name != lane.name:
                return twin
        return None

    @staticmethod
    def _twin_reachable(module: SourceModule, lane: _Lane, twin: _Lane) -> bool:
        if not twin.name.startswith("_"):
            # The public default the fast lane overrides: reachable by
            # construction (the override itself happens behind the
            # slow-path check).
            return True
        return twin.name in _referenced_names(module.tree, outside=twin.node)


register_rule(FastpathParityRule())
