"""Cache-key completeness rule: every spec field reaches its digest.

The result store trusts that two runs sharing a cache key would execute
the identical simulation.  That breaks the moment a new field lands on a
request or spec dataclass without being folded into the corresponding
``*_cache_key`` digest — cached results silently stop matching what a
cold run would produce.  This rule closes the gap structurally:

* every parameter of a ``*_cache_key`` function must be *read* inside
  its body (deleting the ``"load_profile": load_profile`` line from
  ``service_cache_key`` is a finding);
* every field of a dataclass that defines a ``cache_key`` method must be
  consumed (``self.<field>``) inside that method;
* every field of a ``*Spec`` dataclass must be consumed by its
  ``requests()`` expansion, which is where spec fields become request
  fields and therefore digest inputs.

Deliberate exclusions (derived state like ``ServiceRunRequest.service_cycles``)
are declared in a module-level ``CACHE_KEY_EXCLUSIONS`` table mapping
``owner -> {field: justification}``; empty justifications and stale
entries are themselves findings, so the table stays honest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import LintContext, Rule, SourceModule, register_rule
from repro.lint.findings import Finding

#: Name of the module-level exclusion table this rule consumes.
EXCLUSION_TABLE = "CACHE_KEY_EXCLUSIONS"

#: Function-name suffix marking a digest builder.
_KEY_SUFFIX = "_cache_key"

#: Parameters of digest builders that are plumbing, not content.
_IGNORED_PARAMS = frozenset({"self", "cls"})


def _parse_exclusions(
    module: SourceModule,
) -> Tuple[Optional[Dict[str, Dict[str, str]]], Optional[ast.stmt]]:
    """The module's ``CACHE_KEY_EXCLUSIONS`` literal, if present.

    Returns ``(table, node)``; the table is ``None`` when the assignment
    exists but is not a literal owner -> {field: justification} dict.
    """
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == EXCLUSION_TABLE
        ):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return None, node
            if isinstance(value, dict) and all(
                isinstance(owner, str) and isinstance(fields, dict)
                for owner, fields in value.items()
            ):
                return {
                    owner: {str(name): str(why) for name, why in fields.items()}
                    for owner, fields in value.items()
                }, node
            return None, node
    return {}, None


def _read_names(body: List[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return names


def _self_attribute_reads(function: ast.FunctionDef) -> Set[str]:
    reads: Set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return reads


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            annotation = ast.unparse(statement.annotation)
            if "ClassVar" in annotation:
                continue
            name = statement.target.id
            if name.startswith("_"):
                continue
            fields.append((name, statement))
    return fields


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


class CacheKeyRule(Rule):
    name = "cache-key"
    description = (
        "spec/request dataclass fields and *_cache_key parameters must all "
        "reach the digest (or sit in CACHE_KEY_EXCLUSIONS with a reason)"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for module in context.modules:
            parsed, table_node = _parse_exclusions(module)
            if parsed is None and table_node is not None:
                yield self.finding(
                    module,
                    table_node,
                    f"{EXCLUSION_TABLE} must be a literal dict of "
                    "owner -> {field: justification}",
                )
            exclusions = parsed or {}
            used_entries: Set[Tuple[str, str]] = set()
            known_owners: Set[str] = set()

            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name.endswith(
                    _KEY_SUFFIX
                ):
                    known_owners.add(node.name)
                    yield from self._check_key_function(
                        module, node, exclusions, used_entries
                    )
                elif isinstance(node, ast.ClassDef) and _is_dataclass(node):
                    yield from self._check_dataclass(
                        module, node, exclusions, used_entries, known_owners
                    )

            if table_node is not None and parsed is not None:
                yield from self._check_table(
                    module, table_node, exclusions, used_entries, known_owners
                )

    # ------------------------------------------------------------------

    def _check_key_function(
        self,
        module: SourceModule,
        function: ast.FunctionDef,
        exclusions: Dict[str, Dict[str, str]],
        used_entries: Set[Tuple[str, str]],
    ) -> Iterator[Finding]:
        parameters = [
            argument.arg
            for argument in (
                function.args.posonlyargs
                + function.args.args
                + function.args.kwonlyargs
            )
            if argument.arg not in _IGNORED_PARAMS
        ]
        reads = _read_names(function.body)
        excluded = exclusions.get(function.name, {})
        for parameter in parameters:
            if parameter in excluded:
                used_entries.add((function.name, parameter))
                continue
            if parameter not in reads:
                yield self.finding(
                    module,
                    function,
                    f"{function.name}() parameter {parameter!r} never reaches "
                    "the digest: every key input must be hashed or excluded "
                    f"in {EXCLUSION_TABLE} with a justification",
                )

    def _check_dataclass(
        self,
        module: SourceModule,
        node: ast.ClassDef,
        exclusions: Dict[str, Dict[str, str]],
        used_entries: Set[Tuple[str, str]],
        known_owners: Set[str],
    ) -> Iterator[Finding]:
        consumer: Optional[ast.FunctionDef] = _method(node, "cache_key")
        consumer_label = "cache_key()"
        if consumer is None and node.name.endswith("Spec"):
            consumer = _method(node, "requests")
            consumer_label = "requests()"
        if consumer is None:
            return
        known_owners.add(node.name)
        consumed = _self_attribute_reads(consumer)
        excluded = exclusions.get(node.name, {})
        for field_name, field_node in _dataclass_fields(node):
            if field_name in excluded:
                used_entries.add((node.name, field_name))
                continue
            if field_name not in consumed:
                yield self.finding(
                    module,
                    field_node,
                    f"{node.name}.{field_name} is not consumed by "
                    f"{consumer_label}: a field that can change the outcome "
                    "must reach the cache key, or be excluded in "
                    f"{EXCLUSION_TABLE} with a justification",
                )

    def _check_table(
        self,
        module: SourceModule,
        table_node: ast.stmt,
        exclusions: Dict[str, Dict[str, str]],
        used_entries: Set[Tuple[str, str]],
        known_owners: Set[str],
    ) -> Iterator[Finding]:
        for owner, fields in exclusions.items():
            if owner not in known_owners:
                yield self.finding(
                    module,
                    table_node,
                    f"{EXCLUSION_TABLE} names unknown owner {owner!r}: stale "
                    "entries hide future gaps; delete or fix the name",
                )
                continue
            for field_name, justification in fields.items():
                if not justification.strip():
                    yield self.finding(
                        module,
                        table_node,
                        f"{EXCLUSION_TABLE}[{owner!r}][{field_name!r}] has an "
                        "empty justification: say why the field cannot "
                        "change the outcome",
                    )
                if (owner, field_name) not in used_entries:
                    yield self.finding(
                        module,
                        table_node,
                        f"{EXCLUSION_TABLE}[{owner!r}] excludes {field_name!r} "
                        "which is not a field/parameter of that owner: stale "
                        "entries hide future gaps; delete it",
                    )


register_rule(CacheKeyRule())
