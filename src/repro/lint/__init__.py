"""``repro.lint``: AST-based invariant linter for this repository.

The reproduction's guarantees — bit-identical numbers from deterministic
simulations, a fast kernel with a living slow-path oracle, content-hash
cache keys that cover every input — are invariants no off-the-shelf tool
checks.  This package checks them statically, as a rule registry over a
shared parse pass (:mod:`repro.lint.engine`):

* ``determinism`` — no ``random``/``time``/env reads/RNG internals or
  unordered iteration in simulation code (:mod:`repro.lint.determinism`);
* ``fastpath-parity`` — every fast lane keeps a reachable
  ``REPRO_SLOW_PATH`` reference twin with covering counters
  (:mod:`repro.lint.parity`);
* ``cache-key`` — every spec/request field reaches its content-hash
  digest or is excluded with a justification
  (:mod:`repro.lint.cache_keys`);
* ``registry-hygiene`` — registrations happen at import time in their
  owning module (:mod:`repro.lint.registries`);
* ``obs-purity`` — tracing/metrics state never reaches a cache-key
  digest, and wall-clock reads never enter simulated-cycle span code
  (:mod:`repro.lint.obs_purity`).

Run it as ``repro lint src`` (or ``repro-bench lint``); sanctioned
exceptions are ``# repro: allow[rule]: reason`` annotations or a
committed ``lint-baseline.json``.  EXPERIMENTS.md documents the catalog.
"""

from __future__ import annotations

# Importing the rule modules registers the rules; keep the imports
# unconditional so every entry point sees the same registry.
import repro.lint.cache_keys  # noqa: F401
import repro.lint.determinism  # noqa: F401
import repro.lint.obs_purity  # noqa: F401
import repro.lint.parity  # noqa: F401
import repro.lint.registries  # noqa: F401
from repro.lint.cli import add_lint_arguments, command_lint
from repro.lint.engine import (
    LintContext,
    LintReport,
    Rule,
    SourceModule,
    build_context,
    register_rule,
    rule_descriptions,
    rule_names,
    run_rules,
)
from repro.lint.findings import Finding, load_baseline, write_baseline

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "SourceModule",
    "add_lint_arguments",
    "build_context",
    "command_lint",
    "load_baseline",
    "register_rule",
    "rule_descriptions",
    "rule_names",
    "run_rules",
    "write_baseline",
]
