"""Obs-purity rule: tracing/metrics stay out of results and sim time.

The observability layer (``repro/obs/``) is contractually inert: traces
and metrics ride alongside a run and may never change what it computes.
This rule forbids the two ways that contract silently breaks:

* **obs state reaching a cache-key digest** — any name imported from
  ``repro.obs`` used inside a ``cache_key``/``*_cache_key`` function
  would make content hashes depend on whether tracing was enabled,
  poisoning the store;
* **wall-clock reads inside simulated-cycle code** — the packages that
  emit simulated-cycle spans (``service``, ``fleet``) must express all
  time as event-loop cycle counts.  Importing ``wall_time``/``wall_span``
  there, or passing a wall-read into a ``sim_span``/``sim_event`` call,
  mixes the two clock domains and diverges traced from untraced runs.

``repro/obs/`` itself is exempt (it owns the wall clock), and the
``daemon``/``analysis`` layers may take wall spans freely — they run
outside simulated time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.engine import LintContext, Rule, SourceModule, register_rule
from repro.lint.findings import Finding

#: Packages whose spans are denominated in simulated cycles; wall-clock
#: reads (even through the sanctioned obs API) are forbidden here.
CYCLE_SPAN_PACKAGES: Tuple[str, ...] = ("service", "fleet")

#: Names that read the wall clock, directly or through the obs API.
WALL_NAMES = frozenset(
    {
        "wall_time",
        "wall_span",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "time_ns",
    }
)

#: Simulated-cycle span emitters whose arguments are checked.
_SIM_EMITTERS = frozenset({"sim_span", "sim_event"})


def _is_obs_import(module: SourceModule, name: str) -> bool:
    """True when ``name`` is bound to anything under ``repro.obs``."""
    target = module.imports.get(name, "")
    return target == "repro.obs" or target.startswith("repro.obs.")


def _is_cache_key_function(name: str) -> bool:
    return name == "cache_key" or name.endswith("_cache_key")


class ObsPurityRule(Rule):
    name = "obs-purity"
    description = (
        "forbid obs names in cache-key functions and wall-clock reads "
        "in simulated-cycle span code"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for module in context.modules:
            if "repro/obs/" in module.relpath:
                continue
            yield from self._check_cache_key_functions(module)
            if module.in_package(*CYCLE_SPAN_PACKAGES):
                yield from self._check_wall_imports(module)
            yield from self._check_sim_span_args(module)

    # ------------------------------------------------------------------
    # Cache-key digest purity

    def _check_cache_key_functions(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_cache_key_function(node.name):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Name) and _is_obs_import(module, inner.id):
                    yield self.finding(
                        module,
                        inner,
                        f"obs name {inner.id!r} used inside cache-key function "
                        f"{node.name!r}: tracing/metrics state must never "
                        "reach a content-hash digest",
                    )

    # ------------------------------------------------------------------
    # Wall-clock reads in cycle-span packages

    def _check_wall_imports(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                source = node.module or ""
                if not source.startswith("repro.obs"):
                    continue
                for alias in node.names:
                    if alias.name in WALL_NAMES:
                        yield self.finding(
                            module,
                            node,
                            f"import of wall-clock reader {alias.name!r} in a "
                            "simulated-cycle package: spans here must use "
                            "event-loop cycle counts only",
                        )
            elif isinstance(node, ast.Attribute) and node.attr in WALL_NAMES:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read ({node.attr!r}) in a simulated-cycle "
                    "package: spans here must use event-loop cycle counts only",
                )

    # ------------------------------------------------------------------
    # Wall reads flowing into simulated-cycle spans

    def _check_sim_span_args(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _SIM_EMITTERS):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for inner in ast.walk(argument):
                    bad = None
                    if isinstance(inner, ast.Name) and inner.id in WALL_NAMES:
                        bad = inner.id
                    elif isinstance(inner, ast.Attribute) and inner.attr in WALL_NAMES:
                        bad = inner.attr
                    if bad is not None:
                        yield self.finding(
                            module,
                            inner,
                            f"wall-clock read ({bad!r}) flows into a "
                            f"{func.attr} argument: simulated-cycle spans "
                            "must be built from event-loop time only",
                        )


register_rule(ObsPurityRule())
