"""Finding records, fingerprints, and the committed-baseline format.

A finding is one rule violation at one source location.  Its
*fingerprint* deliberately excludes the line number, so a committed
baseline (see :func:`load_baseline`) keeps matching a legacy violation
while unrelated edits move it around the file; any change to the
violating code itself produces a new message and therefore a new
fingerprint, surfacing the finding again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, FrozenSet, List

#: Severity of a finding.  ``error`` findings gate the build; ``warning``
#: findings are reported but never affect the exit status.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Version of the baseline-file format below.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Name of the rule that produced the finding.
        path: Repo-relative posix path of the offending file.
        line: 1-based source line.
        column: 0-based source column.
        message: Human-readable statement of the violation.
        severity: ``error`` (gates the build) or ``warning``.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = SEVERITY_ERROR

    def fingerprint(self) -> str:
        """Stable identity of the finding (line-number independent)."""
        payload = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding (the ``--json`` output shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line human-readable rendering (``path:line: ...``)."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"


def load_baseline(path: Path) -> FrozenSet[str]:
    """Fingerprints accepted by the committed baseline at ``path``."""
    document = json.loads(path.read_text())
    if document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {document.get('version')!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = document.get("findings", [])
    return frozenset(str(entry["fingerprint"]) for entry in entries)


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write ``findings`` as a baseline file accepting all of them."""
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "fingerprint": finding.fingerprint(),
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.rule, f.message)
            )
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
