"""``repro lint``: command-line front end for the invariant linter.

Wired into the ``repro-bench`` parser by :mod:`repro.cli`; kept here so
the lint package owns its own surface.  Exit codes: 0 clean, 1 findings,
2 usage errors (unknown rules, unreadable paths/baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.lint.engine import build_context, rule_descriptions, run_rules
from repro.lint.findings import load_baseline, write_baseline

#: Baseline file picked up automatically when present in the working
#: directory (the committed repo-root baseline).
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "accept findings fingerprinted in FILE "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print findings and counts as JSON (for CI and scripts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def command_lint(args: argparse.Namespace) -> int:
    """Handler for the ``repro lint`` subcommand."""
    if args.list_rules:
        for name, description in rule_descriptions().items():
            print(f"{name:<18} {description}")
        return 0

    baseline_path = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif Path(DEFAULT_BASELINE).is_file():
        baseline_path = Path(DEFAULT_BASELINE)
    baseline = frozenset()
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    try:
        context = build_context([Path(path) for path in args.paths])
    except (OSError, SyntaxError) as error:
        print(f"cannot lint: {error}", file=sys.stderr)
        return 2
    try:
        report = run_rules(context, rules=args.rules, baseline=baseline)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), report.findings)
        print(
            f"wrote {args.write_baseline} accepting {len(report.findings)} finding(s)"
        )
        return 0

    if args.json:
        document: Dict[str, Any] = {
            "command": "lint",
            "paths": list(args.paths),
            "rules": report.rules,
            "findings": [finding.to_dict() for finding in report.findings],
            "counts": {
                "files": len(context.modules),
                "findings": len(report.findings),
                "gating": len(report.gating),
                "suppressed": report.suppressed,
                "baselined": report.baselined,
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if report.gating else 0

    for finding in report.findings:
        print(finding.render())
    summary: List[str] = [
        f"{len(context.modules)} files",
        f"{len(report.findings)} finding(s)",
    ]
    if report.suppressed:
        summary.append(f"{report.suppressed} suppressed")
    if report.baselined:
        summary.append(f"{report.baselined} baselined")
    print(("" if not report.findings else "\n") + "lint: " + ", ".join(summary))
    return 1 if report.gating else 0
