"""Determinism rule: no nondeterminism outside ``DeterministicRng``.

Every number the simulator reports must be a pure function of the
request that produced it — that is what the content-hash cache keys and
the serial==parallel guarantee mean.  This rule forbids the ways that
property silently breaks:

* ``import random`` / ``import time`` inside the simulation packages —
  all randomness must flow through :class:`repro.common.rng.DeterministicRng`
  and simulated time is cycle counts, never wall-clock;
* reaching into RNG internals (``._random`` / ``._randbelow`` /
  ``.getrandbits``) — the two sanctioned fast-path taps in
  ``mem/cache.py`` and ``workloads/generator.py`` carry inline
  ``# repro: allow[determinism]`` annotations and the equivalence suite;
  any new tap must earn the same;
* run-time environment reads (``os.environ`` / ``os.getenv``) anywhere
  in the tree — configuration must arrive through explicit request
  fields so cached results can never diverge from their keys.  The
  sanctioned configuration boundaries are listed in
  :data:`ENV_READ_ALLOWLIST` or annotated inline with the reason they
  cannot corrupt a cached result;
* iteration over unordered ``set``/``frozenset`` values and ``id()``
  used as a container key — both make results depend on interpreter
  details (hash seeding, allocation addresses) rather than the spec.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.lint.engine import LintContext, Rule, SourceModule, register_rule
from repro.lint.findings import Finding

#: Packages whose code runs inside a simulation (cycle-level or
#: event-level).  ``workloads`` is included: the synthetic generator's
#: draw sequence is part of every run's identity.  ``daemon`` is too —
#: it answers requests straight from sessions and the store, so any
#: wall-clock or RNG use there could leak into a served result.
SIM_PACKAGES: Tuple[str, ...] = (
    "mem",
    "ooo",
    "core",
    "monitor",
    "service",
    "fleet",
    "attacks",
    "isa",
    "os_model",
    "workloads",
    "daemon",
)

#: Modules the whole rule skips, with the justification the catalog in
#: EXPERIMENTS.md documents.  Path-suffix matched.
MODULE_ALLOWLIST: Dict[str, str] = {
    "repro/common/rng.py": (
        "owns the random module for the whole tree; every simulator draw "
        "flows through DeterministicRng seeded from the request"
    ),
    "repro/perf/": (
        "wall-clock measurement is the perf subsystem's purpose; its "
        "numbers are throughput records, never simulation results"
    ),
}

#: Modules allowed to read the environment, with justifications.
#: Path-suffix matched; anything else needs an inline annotation.
ENV_READ_ALLOWLIST: Dict[str, str] = {
    "repro/common/fastpath.py": (
        "REPRO_SLOW_PATH selects between two bit-identical kernels, so "
        "the choice cannot affect any cached result"
    ),
    "repro/analysis/store.py": (
        "REPRO_CACHE_DIR/REPRO_CACHE_MODE select where results persist, "
        "never what they contain"
    ),
}

#: Attribute names that reach inside a ``random.Random`` instance.
_RNG_INTERNALS = frozenset({"_random", "_randbelow", "getrandbits"})

#: Modules whose import inside simulation packages breaks determinism.
_FORBIDDEN_MODULES = {
    "random": "draw through DeterministicRng instead",
    "time": "simulated time is cycle counts; wall-clock reads diverge runs",
}


def _module_allowed(module: SourceModule, allowlist: Dict[str, str]) -> bool:
    """Suffix entries match a file; ``dir/`` entries match a subtree."""
    anchored = f"/{module.relpath}"
    for suffix in allowlist:
        if suffix.endswith("/"):
            if f"/{suffix}" in anchored:
                return True
        elif module.relpath.endswith(suffix):
            return True
    return False


def _resolves_to(module: SourceModule, node: ast.expr, target: str) -> bool:
    """True when ``node`` is a name bound to the ``target`` module."""
    return (
        isinstance(node, ast.Name)
        and module.imports.get(node.id, "") == target
    )


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "forbid random/time/os.environ/RNG-internals/unordered iteration "
        "in simulation code"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for module in context.modules:
            if _module_allowed(module, MODULE_ALLOWLIST):
                continue
            in_sim = module.in_package(*SIM_PACKAGES)
            env_allowed = _module_allowed(module, ENV_READ_ALLOWLIST)
            for node in ast.walk(module.tree):
                if in_sim:
                    yield from self._check_sim_node(module, node)
                if not env_allowed:
                    yield from self._check_env_read(module, node)

    # ------------------------------------------------------------------
    # Simulation-scope checks

    def _check_sim_node(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _FORBIDDEN_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"import of {root!r} in simulation code: "
                        f"{_FORBIDDEN_MODULES[root]}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] in _FORBIDDEN_MODULES:
                root = (node.module or "").split(".")[0]
                yield self.finding(
                    module,
                    node,
                    f"import from {root!r} in simulation code: "
                    f"{_FORBIDDEN_MODULES[root]}",
                )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr in _RNG_INTERNALS
            # ``self._randbelow`` etc. are a class's own cached handles;
            # the tap that *bound* them is where the internals were
            # reached into, and that site is the one flagged.
            and not (isinstance(node.value, ast.Name) and node.value.id == "self")
        ):
            yield self.finding(
                module,
                node,
                f"access to RNG internals ({node.attr!r}) in simulation code; "
                "sanctioned fast-path taps must carry an inline allow "
                "annotation and equivalence-suite coverage",
            )
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if self._is_unordered(iterable):
                yield self.finding(
                    module,
                    iterable,
                    "iteration over an unordered set in simulation code; "
                    "iterate a sorted() or insertion-ordered container instead",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and self._is_id_call(key):
                    yield self.finding(
                        module,
                        key,
                        "id()-keyed dict in simulation code: object addresses "
                        "vary across processes; key on a stable identity",
                    )
        elif isinstance(node, ast.Subscript) and self._is_id_call(node.slice):
            yield self.finding(
                module,
                node.slice,
                "id()-keyed container access in simulation code: object "
                "addresses vary across processes; key on a stable identity",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("add", "discard")
                and any(self._is_id_call(argument) for argument in node.args)
            ):
                yield self.finding(
                    module,
                    node,
                    "id() stored in a container in simulation code: object "
                    "addresses vary across processes; use a stable identity",
                )

    @staticmethod
    def _is_unordered(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    # ------------------------------------------------------------------
    # Tree-wide environment reads

    def _check_env_read(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute) and node.attr in ("environ", "getenv"):
            if _resolves_to(module, node.value, "os"):
                yield self.finding(
                    module,
                    node,
                    f"run-time environment read (os.{node.attr}): route the "
                    "value through an explicit request field, or annotate "
                    "with why it cannot diverge a cached result from its key",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "os" and node.level == 0:
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    yield self.finding(
                        module,
                        node,
                        f"import of os.{alias.name}: route configuration "
                        "through explicit request fields instead",
                    )


register_rule(DeterminismRule())
