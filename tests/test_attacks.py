"""Security tests: every modelled side channel is open on the baseline and
closed on MI6 (the executable form of Property 1)."""

import pytest

from repro.attacks.branch_residue import BranchResidueAttack
from repro.attacks.contention import arbiter_contention_channel, mshr_contention_channel
from repro.attacks.prime_probe import PrimeProbeAttack
from repro.attacks.spectre import SpectreGadgetExperiment


class TestPrimeProbe:
    @pytest.mark.parametrize("secret", [0, 3, 6])
    def test_baseline_llc_leaks_victim_sets(self, secret):
        result = PrimeProbeAttack(set_partitioned=False).run(secret)
        assert result.leaked

    @pytest.mark.parametrize("secret", [0, 3, 6])
    def test_partitioned_llc_leaks_nothing(self, secret):
        result = PrimeProbeAttack(set_partitioned=True).run(secret)
        assert not result.leaked
        assert not result.observed_sets

    @pytest.mark.parametrize("set_partitioned", [False, True])
    def test_monitored_sets_are_distinct_and_inside_the_attacker_region(
        self, set_partitioned
    ):
        attack = PrimeProbeAttack(set_partitioned=set_partitioned)
        sets = attack._monitored_sets(8)
        assert len(sets) == 8
        assert len(set(sets)) == 8
        # Every monitored set must be reachable from the attacker's own
        # region — the scan may not wander into other parties' memory.
        for set_index in sets:
            assert attack._addresses_for_set(attack.attacker_region, set_index, 1)

    def test_monitored_sets_scan_terminates_under_set_partitioning(self):
        # With 1024 sets and 6 region-index bits a region reaches only
        # 1024 >> 6 = 16 distinct sets; asking for more must raise
        # instead of scanning other regions or looping forever
        # (regression: the scan used to be unbounded).
        attack = PrimeProbeAttack(set_partitioned=True)
        reachable = attack._monitored_sets(16)
        assert len(set(reachable)) == 16
        with pytest.raises(ValueError, match="distinct LLC sets"):
            attack._monitored_sets(17)


class TestSpectreGadget:
    @pytest.mark.parametrize("secret", [1, 7, 13])
    def test_baseline_speculative_leak_recovers_secret(self, secret):
        result = SpectreGadgetExperiment(mi6_protection=False).run(secret)
        assert result.speculative_access_emitted
        assert result.leaked

    @pytest.mark.parametrize("secret", [1, 7, 13])
    def test_mi6_suppresses_the_speculative_access(self, secret):
        result = SpectreGadgetExperiment(mi6_protection=True).run(secret)
        assert not result.speculative_access_emitted
        assert not result.transmitted_set_observed
        assert not result.leaked


class TestBranchPredictorResidue:
    @pytest.mark.parametrize("secret_bit", [True, False])
    def test_without_purge_the_residue_reveals_the_secret_direction(self, secret_bit):
        result = BranchResidueAttack(purge_on_switch=False).run(secret_bit)
        assert result.attacker_guess == secret_bit

    @pytest.mark.parametrize("secret_bit", [True, False])
    def test_with_purge_the_prediction_is_secret_independent(self, secret_bit):
        result = BranchResidueAttack(purge_on_switch=True).run(secret_bit)
        assert not result.leaked

    def test_purged_prediction_identical_for_both_secrets(self):
        taken = BranchResidueAttack(purge_on_switch=True).run(True)
        not_taken = BranchResidueAttack(purge_on_switch=True).run(False)
        assert taken.attacker_guess == not_taken.attacker_guess


class TestContentionChannels:
    def test_mshr_channel_open_on_baseline(self):
        assert mshr_contention_channel(secure=False, bits=[1, 0, 1, 0]).channel_open

    def test_mshr_channel_closed_on_mi6(self):
        assert not mshr_contention_channel(secure=True, bits=[1, 0, 1, 0]).channel_open

    def test_arbiter_channel_open_on_baseline(self):
        assert arbiter_contention_channel(secure=False, bits=[1, 0, 1, 0]).channel_open

    def test_arbiter_channel_closed_on_mi6(self):
        assert not arbiter_contention_channel(secure=True, bits=[1, 0, 1, 0]).channel_open
