"""Good fixture: every field reaches its digest or sits in the table."""

import hashlib
import json
from dataclasses import dataclass

CACHE_KEY_EXCLUSIONS = {
    "RunRequest": {
        "service_cycles": "derived deterministically from the other fields",
    },
}


def service_cache_key(policy, config, seed, *, load, load_profile):
    payload = {
        "policy": policy,
        "config": config,
        "seed": seed,
        "load": load,
        "load_profile": load_profile,
    }
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


@dataclass(frozen=True)
class RunRequest:
    benchmark: str
    instructions: int
    seed: int
    service_cycles: dict

    def cache_key(self):
        payload = {
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "seed": self.seed,
        }
        return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    variants: tuple
    instructions: int

    def requests(self):
        return [
            RunRequest(name, self.instructions, 7, {}) for name in self.variants
        ]
