"""Bad fixture: digest gaps in a key function and a request dataclass."""

import hashlib
import json
from dataclasses import dataclass

CACHE_KEY_EXCLUSIONS = {
    "service_cache_key": {
        "seed": "",
    },
    "GhostRequest": {
        "payload": "stale: no such owner ships a cache_key here",
    },
}


def service_cache_key(policy, config, seed, *, load, load_profile):
    payload = {
        "policy": policy,
        "config": config,
        "load": load,
    }
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


@dataclass(frozen=True)
class RunRequest:
    benchmark: str
    instructions: int
    seed: int

    def cache_key(self):
        payload = {
            "benchmark": self.benchmark,
            "instructions": self.instructions,
        }
        return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    variants: tuple
    instructions: int

    def requests(self):
        return [RunRequest(name, 1000, 7) for name in self.variants]
