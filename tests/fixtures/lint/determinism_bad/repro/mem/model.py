"""Bad fixture: every determinism violation the rule knows about."""

import os
import random
import time


def draw(policy):
    tap = policy._rng._random
    return tap.getrandbits(4) + random.random() + time.time()


def walk(ways):
    total = 0
    for way in {1, 2, 3}:
        total += way
    ordered = [value for value in set(ways)]
    return total, ordered


def track(table, block):
    table[id(block)] = True
    seen = set()
    seen.add(id(block))
    return {id(block): block}


def configure():
    return os.environ.get("REPRO_FIXTURE", "0")
