"""Good fixture: unconditional top-level registration in the owner."""

_POLICIES = {}


def register_policy(name, factory, description):
    _POLICIES[name] = (factory, description)


class FifoPolicy:
    pass


register_policy("fifo", FifoPolicy, "strict arrival order")
FALLBACK = register_policy("fallback", FifoPolicy, "bound registration")
