"""Good fixture: the compatibility module may call its own shims."""


def parse_variant(text):
    return text.upper()


def config_for_variant(variant):
    return {"variant": parse_variant(variant)}
