"""Good fixture: every fast lane keeps a reachable, counter-covering twin."""

from repro.common.fastpath import slow_path_enabled


class Kernel:
    def step(self, stats, index):
        if slow_path_enabled():
            return self._step_reference(stats, index)
        return self._step_fast(stats, index)

    def _step_reference(self, stats, index):
        stats.counter("kernel.step").increment()
        stats.counter(f"kernel.core{index}.step").increment()

    def _step_fast(self, stats, index):
        stats.counter("kernel.step").increment()
        stats.counter(f"kernel.core{index}.step").increment()

    def access(self, stats):
        stats.counter("kernel.access").increment()

    def _access_slab(self, stats):
        stats.counter("kernel.access").increment()
