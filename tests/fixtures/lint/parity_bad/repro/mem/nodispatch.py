"""Bad fixture: imports the fastpath module but never dispatches on it."""

import repro.common.fastpath  # noqa: F401


def run(stats):
    stats.counter("nodispatch.run").increment()
