"""Bad fixture: orphan fast lane, unreachable twin, counter superset."""

from repro.common.fastpath import slow_path_enabled


class Kernel:
    def step(self, stats):
        if slow_path_enabled():
            return self._step_reference(stats)
        return self._step_fast(stats)

    def _step_reference(self, stats):
        stats.counter("kernel.step").increment()

    def _step_fast(self, stats):
        stats.counter("kernel.step").increment()
        stats.counter("kernel.bonus").increment()

    def _orphan_fast(self, stats):
        stats.counter("kernel.orphan").increment()


class Sleeper:
    def _drain_fast(self, stats):
        stats.counter("sleeper.drain").increment()

    def _drain_reference(self, stats):
        stats.counter("sleeper.drain").increment()
