"""Bad fixture: registration from outside the registry's owning module."""

from repro.service.schedulers import register_policy


class RoguePolicy:
    pass


register_policy("rogue", RoguePolicy, "registered from the wrong module")
