"""Bad fixture: conditional registration inside the owning module."""

_POLICIES = {}


def register_policy(name, factory, description):
    _POLICIES[name] = (factory, description)


class FifoPolicy:
    pass


if True:
    register_policy("fifo", FifoPolicy, "registered behind a conditional")


def _late():
    register_policy("lazy", FifoPolicy, "registered lazily")
