"""Bad fixture: internal code calling a legacy variant shim."""

from repro.core.variants import config_for_variant, parse_variant


def evaluation_config(text):
    variant = parse_variant(text)
    return config_for_variant(variant)
