"""Good fixture: deterministic idiom for everything the bad twin breaks."""

from repro.common.rng import DeterministicRng


def draw(seed):
    rng = DeterministicRng(seed).fork("fixture")
    return rng.integer(0, 15)


def walk(ways):
    total = 0
    for way in sorted({1, 2, 3}):
        total += way
    ordered = [value for value in sorted(set(ways))]
    return total, ordered


def track(table, block):
    table[block.tag] = True
    return {block.tag: block}
