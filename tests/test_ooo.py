"""Tests for the out-of-order core structures and timing model."""

import pytest

from repro.common.rng import DeterministicRng
from repro.common.stats import StatsRegistry
from repro.isa.instructions import alu, branch, load, store, syscall
from repro.mem.address import AddressMap
from repro.mem.dram import DramController
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.llc import LastLevelCache, LlcConfig
from repro.ooo.branch_predictor import TournamentPredictor
from repro.ooo.btb import BranchTargetBuffer, ReturnAddressStack
from repro.ooo.core import CoreConfig, OutOfOrderCore
from repro.ooo.lsq import LoadStoreEntry, LoadStoreQueue, StoreBuffer
from repro.ooo.rename import FreeList, RenameTable
from repro.ooo.rob import IssueQueue, ReorderBuffer


def build_core(core_config=None):
    stats = StatsRegistry()
    address_map = AddressMap()
    dram = DramController(stats=stats)
    llc = LastLevelCache(LlcConfig(), address_map, dram, rng=DeterministicRng(0), stats=stats)
    hierarchy = MemoryHierarchy(0, llc, dram, address_map, rng=DeterministicRng(1), stats=stats)
    return OutOfOrderCore(hierarchy, core_config or CoreConfig(), stats=stats)


class TestBranchPredictor:
    def test_learns_a_strong_bias(self):
        predictor = TournamentPredictor()
        for _ in range(50):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_learns_a_loop_pattern(self):
        predictor = TournamentPredictor()
        mispredictions = 0
        for iteration in range(400):
            taken = (iteration % 8) != 7
            if predictor.predict(0x800) != taken:
                mispredictions += 1
            predictor.update(0x800, taken)
        # After warm-up the only recurring error should be near the loop exit.
        assert mispredictions < 150

    def test_flush_restores_initial_state(self):
        predictor = TournamentPredictor()
        pristine = predictor.snapshot()
        for index in range(200):
            predictor.update(0x400 + index * 4, index % 3 == 0)
        predictor.flush()
        assert predictor.snapshot() == pristine

    def test_flush_stall_cycles_matches_largest_table(self):
        predictor = TournamentPredictor()
        assert predictor.flush_stall_cycles() == 4096 // 8


class TestFrontEndStructures:
    def test_btb_lookup_and_flush(self):
        btb = BranchTargetBuffer()
        btb.update(0x4000, 0x5000)
        assert btb.lookup(0x4000) == 0x5000
        btb.flush()
        assert btb.lookup(0x4000) is None

    def test_ras_push_pop_and_overflow(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)           # overflows, dropping 0x100
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None


class TestPipelineStructures:
    def test_rob_capacity_and_squash(self):
        rob = ReorderBuffer(capacity=4)
        for sequence in range(4):
            rob.insert(sequence)
        assert rob.is_full()
        assert rob.squash_all() == 4
        assert rob.is_empty()

    def test_issue_queue_empty_states_indistinguishable(self):
        queue_a, queue_b = IssueQueue(8), IssueQueue(8)
        for sequence in range(5):
            queue_b.insert(sequence)
        queue_b.squash_all()
        assert queue_a.observable_projection() == queue_b.observable_projection()
        assert queue_a.snapshot() != queue_b.snapshot()   # raw pointers differ

    def test_age_prioritised_queue_leaks_through_slot_assignment(self):
        queue_a, queue_b = IssueQueue(8, age_prioritised=True), IssueQueue(8, age_prioritised=True)
        queue_b.insert(0)
        queue_b.insert(1)
        queue_b.remove(0)
        assert queue_a.observable_projection() != queue_b.observable_projection()

    def test_free_list_permutations_observationally_equal(self):
        list_a, list_b = FreeList(), FreeList()
        list_b.reset(permute_with=DeterministicRng(5))
        assert list_a.observable_projection() == list_b.observable_projection()
        assert list_a.is_complete() and list_b.is_complete()

    def test_rename_table_reset(self):
        table = RenameTable()
        table.remap(3, 77)
        table.reset()
        assert table.mapping(3) == 3

    def test_lsq_and_store_buffer(self):
        lsq = LoadStoreQueue(load_entries=2, store_entries=1)
        lsq.insert(LoadStoreEntry(sequence=1, address=0x100, is_store=False, speculative=True))
        lsq.insert(LoadStoreEntry(sequence=2, address=0x200, is_store=True))
        assert lsq.occupancy() == 2
        assert len(lsq.speculative_loads()) == 1
        assert lsq.squash_all() == 2
        buffer = StoreBuffer(entries=2)
        buffer.push(1)
        buffer.push(2)
        assert buffer.push(3) == 1      # oldest drained on overflow
        assert buffer.drain_all() == [2, 3]


class TestCoreTiming:
    def test_independent_alu_stream_reaches_superscalar_ipc(self):
        core = build_core()
        stream = [alu(dst=(index % 16) + 1) for index in range(2000)]
        result = core.run(stream)
        assert result.instructions == 2000
        assert result.ipc > 1.2

    def test_dependent_chain_is_serial(self):
        core = build_core()
        stream = [alu(dst=1, srcs=(1,)) for _ in range(1000)]
        result = core.run(stream)
        assert result.ipc <= 1.05

    def test_load_misses_slow_execution(self):
        fast_core = build_core()
        hit_stream = [load(dst=1, vaddr=0x1000) for _ in range(400)]
        slow_core = build_core()
        miss_stream = [load(dst=1, vaddr=0x1000 + index * 4096 * 31) for index in range(400)]
        assert slow_core.run(miss_stream).cycles > fast_core.run(hit_stream).cycles

    def test_mispredictions_add_cycles(self):
        rng = DeterministicRng(11)
        predictable = build_core().run(
            [branch(branch_id=1, taken=True, pc=0x400, target=0x800) for _ in range(500)]
        )
        random_outcomes = build_core().run(
            [
                branch(branch_id=1, taken=rng.chance(0.5), pc=0x400, target=0x800)
                for _ in range(500)
            ]
        )
        assert random_outcomes.stats.value("bp.mispredictions") > predictable.stats.value(
            "bp.mispredictions"
        )
        assert random_outcomes.cycles > predictable.cycles

    def test_nonspec_memory_mode_is_slower(self):
        stream = [
            load(dst=1, vaddr=0x1000 + (index % 64) * 64) if index % 3 == 0 else alu(dst=2)
            for index in range(1500)
        ]
        base = build_core(CoreConfig()).run(list(stream))
        nonspec = build_core(CoreConfig(nonspec_memory=True)).run(list(stream))
        assert nonspec.cycles > base.cycles * 1.3

    def test_trap_handling_charges_penalty(self):
        config = CoreConfig(trap_handler_cycles=500)
        with_syscalls = build_core(config).run(
            [syscall() if index % 200 == 199 else alu(dst=1) for index in range(1000)]
        )
        without = build_core(config).run([alu(dst=1) for _ in range(1000)])
        assert with_syscalls.cycles > without.cycles + 1000
        assert with_syscalls.stats.value("core.traps") == 5

    def test_store_misses_do_not_stall_commit(self):
        core = build_core()
        stores = [store(vaddr=0x1000 + index * 4096 * 17) for index in range(300)]
        result = core.run(stores)
        assert result.cpi < 10.0


class TestCommitWidth:
    """The commit stage honours config.commit_width (regression: the old
    model hardcoded 2-wide commit regardless of configuration)."""

    COUNT = 120

    def _cycles_for(self, commit_width):
        # Wide enough fetch and execute that commit is the bottleneck.
        config = CoreConfig(fetch_width=4, alu_units=4, commit_width=commit_width)
        stream = [alu(dst=(index % 16) + 1) for index in range(self.COUNT)]
        return build_core(config).run(stream).cycles

    @pytest.mark.parametrize("commit_width", [1, 2, 4])
    def test_commit_rate_never_exceeds_configured_width(self, commit_width):
        assert self._cycles_for(commit_width) >= self.COUNT // commit_width

    def test_narrower_commit_is_strictly_slower(self):
        one_wide = self._cycles_for(1)
        two_wide = self._cycles_for(2)
        four_wide = self._cycles_for(4)
        assert one_wide > two_wide > four_wide

    def test_single_wide_commit_serialises_retirement(self):
        # The old hardcoded 2-back window let a commit_width=1 core retire
        # two instructions per cycle; the honoured width forbids that.
        assert self._cycles_for(1) >= self.COUNT
