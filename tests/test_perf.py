"""Tests for the perf subsystem: profiler, pinned suite, recorder, CLI."""

import json
from datetime import date
from pathlib import Path

import pytest

from repro.analysis.engine import EvaluationSettings
from repro.api.requests import WorkloadRequest
from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    COMMIT_RECORD_NAME,
    BenchRecorder,
    PINNED_SEED,
    PINNED_SERVICE_CASE,
    PINNED_SUITE,
    ProfileReport,
    Profiler,
    commit_record_path,
    compare_to_baseline,
    load_bench,
    pinned_service_request,
    run_service_case,
    run_suite,
    suite_requests,
)
from repro.perf.recorder import BENCH_KIND, latest_bench

TINY = 400  # instructions per run: enough to exercise the kernel, fast in CI


class TestProfiler:
    def test_profile_reports_throughput(self):
        profiler = Profiler(EvaluationSettings(instructions=TINY, seed=2019))
        report = profiler.profile(WorkloadRequest(variant="BASE", benchmark="hmmer"))
        assert report.instructions == TINY
        assert report.cycles > 0
        assert report.wall_seconds > 0.0
        assert report.instructions_per_second > 0.0
        assert report.cycles_per_second > report.instructions_per_second * 0.5
        assert report.component_shares == {}

    def test_component_shares_sum_to_one(self):
        profiler = Profiler(EvaluationSettings(instructions=TINY, seed=2019))
        report = profiler.profile(
            WorkloadRequest(variant="BASE", benchmark="hmmer"), components=True
        )
        assert report.component_shares
        assert sum(report.component_shares.values()) == pytest.approx(1.0)
        # The simulator kernel must dominate: mem+ooo+workloads together.
        kernel = sum(
            report.component_shares.get(component, 0.0)
            for component in ("mem", "ooo", "workloads")
        )
        assert kernel > 0.3

    def test_rejects_unknown_request_shape(self):
        with pytest.raises(TypeError):
            Profiler().profile("not a request")  # type: ignore[arg-type]

    def test_zero_wall_guards(self):
        report = ProfileReport(
            benchmark="b", config_name="c", instructions=1, cycles=1, wall_seconds=0.0
        )
        assert report.instructions_per_second == 0.0
        assert report.cycles_per_second == 0.0


class TestSuite:
    def test_pinned_composition_is_stable(self):
        # The trajectory is only meaningful if the suite never drifts.
        assert PINNED_SUITE == (
            ("BASE", "hmmer"),
            ("PART+ARB", "libquantum"),
            ("F+P+M+A", "mcf"),
        )
        assert PINNED_SEED == 2019

    def test_suite_requests_pin_seed_and_length(self):
        requests = suite_requests(instructions=TINY)
        assert len(requests) == len(PINNED_SUITE)
        assert all(request.seed == PINNED_SEED for request in requests)
        assert {request.instructions for request in requests} == {TINY}

    def test_run_suite_aggregates(self):
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        assert len(result.measurements) == 1
        measurement = result.measurements[0]
        assert measurement.variant == "BASE"
        assert len(measurement.cache_key) == 64
        assert len(measurement.config_digest) == 64
        assert result.total_instructions == TINY
        assert result.instructions_per_second > 0.0


class TestServiceCase:
    def test_pinned_case_is_stable(self):
        assert PINNED_SERVICE_CASE["policy"] == "fifo"
        assert PINNED_SERVICE_CASE["spec"] == "F+P+M+A"
        request = pinned_service_request()
        assert request.seed == PINNED_SEED
        assert request.num_requests == PINNED_SERVICE_CASE["num_requests"]
        assert len(request.cache_key()) == 64

    def test_measures_event_loop_throughput(self):
        measurement = run_service_case()
        assert measurement.requests == PINNED_SERVICE_CASE["num_requests"]
        assert measurement.wall_seconds > 0.0
        assert measurement.requests_per_second > 0.0
        assert measurement.outcome.charged_purge_cycles > 0
        assert measurement.cache_key == pinned_service_request().cache_key()

    def test_components_cover_the_serving_layer(self):
        measurement = run_service_case(components=True)
        shares = measurement.component_shares
        assert shares, "components=True must produce time shares"
        # The event loop's own packages must be visible, not just the
        # kernel packages it leans on for cycle resolution.
        assert "service" in shares
        assert sum(shares.values()) == pytest.approx(1.0)
        # The shares travel into the BENCH record's service section.
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        record = BenchRecorder().build_record(
            result, calibration=10.0, sha="svc", service=measurement
        )
        assert record["service"]["component_shares"] == shares

    def test_components_default_off(self):
        assert run_service_case().component_shares == {}

    def test_record_carries_and_gates_service(self, tmp_path):
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        measurement = run_service_case()
        record = recorder.build_record(
            result, calibration=10.0, sha="svc", service=measurement
        )
        service = record["service"]
        assert service["requests_per_second"] == pytest.approx(
            measurement.requests_per_second
        )
        assert service["normalized_throughput"] == pytest.approx(
            measurement.requests_per_second / 10.0
        )
        # A kernel-healthy record whose event loop collapsed must trip
        # the gate through the service ratio alone.
        slow = json.loads(json.dumps(record))
        slow["service"]["normalized_throughput"] /= 10.0
        comparison = compare_to_baseline(slow, record)
        assert comparison.service_ratio == pytest.approx(0.1)
        assert comparison.service_regressed
        assert comparison.regressed
        # An old baseline without a service section gates the kernel only.
        legacy = json.loads(json.dumps(record))
        del legacy["service"]
        comparison = compare_to_baseline(record, legacy)
        assert comparison.service_ratio is None
        assert not comparison.regressed
        # A baseline with a different pinned service case is not comparable.
        foreign = json.loads(json.dumps(record))
        foreign["service"]["cache_key"] = "0" * 64
        with pytest.raises(ValueError, match="service cache key"):
            compare_to_baseline(record, foreign)


class TestRecorder:
    def _result(self):
        return run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))

    def test_write_and_load_roundtrip(self, tmp_path):
        recorder = BenchRecorder(tmp_path)
        path = recorder.write(self._result(), calibration=10.0, sha="abc123")
        assert path.name == f"BENCH_{date.today().isoformat()}.json"
        record = load_bench(path)
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["kind"] == BENCH_KIND
        assert record["git_sha"] == "abc123"
        assert record["seed"] == PINNED_SEED
        assert record["instructions"] == TINY
        assert record["slow_path"] is False
        assert record["aggregate"]["instructions_per_second"] > 0.0
        assert record["aggregate"]["normalized_throughput"] == pytest.approx(
            record["aggregate"]["instructions_per_second"] / 10.0
        )
        run = record["runs"][0]
        assert run["variant"] == "BASE"
        assert len(run["config_digest"]) == 64
        assert latest_bench(tmp_path) == path

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_bogus.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_bench(path)

    @staticmethod
    def _record(normalized, raw=1000.0):
        return {
            "aggregate": {
                "normalized_throughput": normalized,
                "instructions_per_second": raw,
            }
        }

    def test_compare_flags_regression(self):
        comparison = compare_to_baseline(self._record(70.0), self._record(100.0))
        assert comparison.ratio == pytest.approx(0.7)
        assert comparison.regressed

    def test_compare_accepts_small_dip(self):
        comparison = compare_to_baseline(self._record(90.0), self._record(100.0))
        assert not comparison.regressed

    def test_compare_threshold_is_configurable(self):
        comparison = compare_to_baseline(
            self._record(90.0), self._record(100.0), max_regression=0.05
        )
        assert comparison.regressed
        assert comparison.max_regression == pytest.approx(0.05)

    def test_compare_rejects_different_work(self, tmp_path):
        # Ratios between records that measured different work (run
        # length, seed, kernel) are meaningless and must be refused.
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        record = recorder.build_record(result, calibration=10.0, sha="x")
        for field, other in (
            ("instructions", TINY * 2),
            ("seed", 7),
            ("slow_path", True),
        ):
            baseline = dict(record)
            baseline[field] = other
            with pytest.raises(ValueError):
                compare_to_baseline(record, baseline)

    def test_compare_rejects_different_suite_keys(self, tmp_path):
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        record = recorder.build_record(result, calibration=10.0, sha="x")
        baseline = json.loads(json.dumps(record))
        baseline["runs"][0]["cache_key"] = "0" * 64
        with pytest.raises(ValueError):
            compare_to_baseline(record, baseline)

    def test_write_accepts_prebuilt_record(self, tmp_path):
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY, cases=(("BASE", "hmmer"),))
        record = recorder.build_record(result, calibration=10.0, sha="prebuilt")
        path = recorder.write(record=record)
        assert load_bench(path) == record
        with pytest.raises(ValueError):
            recorder.write()


class TestCli:
    def test_perf_json_document(self, tmp_path, capsys):
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--output-dir",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == BENCH_KIND
        assert len(document["runs"]) == len(PINNED_SUITE)
        assert document["aggregate"]["instructions_per_second"] > 0.0
        assert (tmp_path / f"BENCH_{date.today().isoformat()}.json").exists()
        assert document["record_path"].endswith(".json")

    def test_perf_record_flag_writes_commit_friendly_record(
        self, tmp_path, monkeypatch, capsys
    ):
        # --record writes a second, stable-name copy at the repo root
        # (tmp_path is no git checkout, so the root resolves to cwd).
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--no-service",
                "--output-dir",
                str(tmp_path / "artifacts"),
                "--record",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        commit_path = Path(document["commit_record_path"])
        assert commit_path.name == COMMIT_RECORD_NAME
        assert commit_path == commit_record_path(tmp_path)
        # The dated artifact and the stable-name copy are one document.
        assert load_bench(commit_path) == load_bench(document["record_path"])

    def test_perf_gate_failure_prints_per_case_deltas(self, tmp_path, capsys):
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY)
        record = recorder.build_record(result, calibration=10.0, sha="baseline")
        record["aggregate"]["normalized_throughput"] *= 1_000.0
        for run in record["runs"]:
            run["instructions_per_second"] *= 1_000.0
        baseline = tmp_path / "BENCH_inflated.json"
        baseline.write_text(json.dumps(record))
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--no-record",
                "--no-service",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "perf gate FAILED" in captured.err
        # Every pinned case is named with its own normalized delta.
        for spec, benchmark in PINNED_SUITE:
            assert f"{spec}/{benchmark}" in captured.err
        assert "aggregate" in captured.err

    def test_perf_gate_fails_on_regression(self, tmp_path, capsys):
        # A baseline claiming implausibly high normalized throughput must
        # trip the gate and exit nonzero.  (Full pinned suite, so the
        # records are comparable and only the throughput differs.)
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY)
        record = recorder.build_record(result, calibration=10.0, sha="baseline")
        record["aggregate"]["normalized_throughput"] *= 1_000.0
        baseline = tmp_path / "BENCH_inflated.json"
        baseline.write_text(json.dumps(record))
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--no-record",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_perf_gate_passes_against_committed_style_baseline(self, tmp_path, capsys):
        recorder = BenchRecorder(tmp_path)
        result = run_suite(instructions=TINY)
        baseline = recorder.write(result, path=tmp_path / "BENCH_base.json")
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--no-record",
                "--baseline",
                str(baseline),
                "--max-regression",
                "60",
            ]
        )
        assert code == 0

    def test_perf_rejects_unreadable_baseline(self, tmp_path, capsys):
        code = main(
            [
                "perf",
                "--instructions",
                str(TINY),
                "--no-record",
                "--baseline",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 2

    def test_sweep_json_is_machine_checkable(self, capsys):
        code = main(
            [
                "sweep",
                "--variants",
                "BASE",
                "--benchmarks",
                "hmmer",
                "--instructions",
                str(TINY),
                "--no-cache",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "sweep"
        assert document["cache"]["runs_simulated"] == 1
        assert document["cache"]["warm_from_disk"] == 0
        entry = document["entries"][0]
        assert entry["variant"] == "BASE"
        assert entry["benchmark"] == "hmmer"
        assert entry["origin"] == "cold"
        assert len(entry["cache_key"]) == 64

    def test_attack_json_is_machine_checkable(self, capsys):
        code = main(["attack", "prime_probe", "--variants", "BASE", "--no-cache", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "attack"
        assert document["cache"]["runs_simulated"] == 1
        entry = document["entries"][0]
        assert entry["scenario"] == "prime_probe"
        assert entry["leaked"] is True
        assert entry["leaked_bits"] > 0
