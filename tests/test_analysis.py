"""Tests for the evaluation harness and reporting helpers."""

import pytest

from repro.analysis.harness import (
    EvaluationSettings,
    cached_run,
    clear_run_cache,
    overhead_percent,
    run_figure_series,
    runtime_overhead_metric,
)
from repro.analysis.report import format_comparison_table, format_series_table, geometric_mean
from repro.core.variants import Variant


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


SMALL = EvaluationSettings(instructions=3000)


class TestHarness:
    def test_cached_run_returns_same_object(self):
        first = cached_run(Variant.BASE, "hmmer", SMALL)
        second = cached_run(Variant.BASE, "hmmer", SMALL)
        assert first is second

    def test_overhead_percent_is_positive_for_secured_variant(self):
        assert overhead_percent(Variant.ARB, "libquantum", SMALL) > 0

    def test_run_figure_series_includes_average(self):
        series = run_figure_series(
            Variant.ARB, runtime_overhead_metric, SMALL, benchmarks=["hmmer", "libquantum"]
        )
        assert set(series) == {"hmmer", "libquantum", "average"}
        assert series["average"] == pytest.approx(
            (series["hmmer"] + series["libquantum"]) / 2
        )

    def test_run_figure_series_is_insertion_ordered(self):
        series = run_figure_series(
            Variant.ARB, runtime_overhead_metric, SMALL, benchmarks=["libquantum", "hmmer"]
        )
        assert list(series) == ["libquantum", "hmmer", "average"]

    def test_run_figure_series_rejects_reserved_benchmark_name(self):
        with pytest.raises(ValueError, match="average"):
            run_figure_series(
                Variant.ARB, runtime_overhead_metric, SMALL, benchmarks=["hmmer", "average"]
            )

    def test_run_figure_series_rejects_empty_benchmark_list(self):
        with pytest.raises(ValueError, match="empty"):
            run_figure_series(Variant.ARB, runtime_overhead_metric, SMALL, benchmarks=[])

    def test_settings_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
        assert EvaluationSettings.from_environment().instructions == 1234

    def test_settings_seed_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "42")
        settings = EvaluationSettings.from_environment()
        assert settings.seed == 42
        monkeypatch.delenv("REPRO_BENCH_SEED")
        assert EvaluationSettings.from_environment().seed == 2019


class TestReport:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_series_table_contains_rows_and_paper_column(self):
        text = format_series_table(
            "Figure X", {"gcc": 10.0, "average": 10.0}, {"gcc": 21.6}, unit="%"
        )
        assert "Figure X" in text and "gcc" in text and "21.60" in text

    def test_comparison_table(self):
        text = format_comparison_table({"average overhead": (15.0, 16.4)}, title="Summary")
        assert "average overhead" in text and "16.40" in text
