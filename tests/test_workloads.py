"""Tests for the synthetic SPEC CINT2006 workload substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.isa.instructions import InstructionKind
from repro.workloads.characteristics import PAPER_AVERAGES, PAPER_REPORTED
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec_cint2006 import SPEC_CINT2006, benchmark_names, profile_for


class TestProfiles:
    def test_eleven_benchmarks_matching_the_paper(self):
        assert len(benchmark_names()) == 11
        assert "perlbench" not in benchmark_names()
        assert set(benchmark_names()) == set(PAPER_REPORTED)

    def test_all_profiles_validate(self):
        for name, profile in SPEC_CINT2006.items():
            assert abs(sum(profile.instruction_mix.values()) - 1.0) < 1e-6
            assert profile.name == name

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", instruction_mix={"alu": 0.5, "load": 0.2})

    def test_invalid_reuse_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(
                name="bad",
                instruction_mix={"alu": 0.7, "load": 0.2, "store": 0.05, "branch": 0.05},
                reuse_l1_fraction=0.9,
                new_line_fraction=0.5,
            )

    def test_memory_and_branch_fraction_helpers(self):
        gcc = profile_for("gcc")
        assert 0.3 < gcc.memory_fraction < 0.5
        assert 0.1 < gcc.branch_fraction < 0.25

    def test_gcc_is_the_llc_heaviest_profile(self):
        expected = {
            name: profile.expected_llc_misses_per_kilo_instruction
            for name, profile in SPEC_CINT2006.items()
        }
        assert max(expected, key=expected.get) == "gcc"

    def test_paper_averages_recorded(self):
        assert PAPER_AVERAGES["overall_overhead_pct"] == pytest.approx(16.4)
        assert PAPER_AVERAGES["flush_overhead_pct"] == pytest.approx(5.4)


class TestGenerator:
    def test_stream_is_deterministic(self):
        first = list(SyntheticWorkload(profile_for("bzip2"), seed=1).instructions(500))
        second = list(SyntheticWorkload(profile_for("bzip2"), seed=1).instructions(500))
        assert [instruction.kind for instruction in first] == [
            instruction.kind for instruction in second
        ]
        assert [instruction.vaddr for instruction in first] == [
            instruction.vaddr for instruction in second
        ]

    def test_different_seeds_differ(self):
        first = list(SyntheticWorkload(profile_for("bzip2"), seed=1).instructions(300))
        second = list(SyntheticWorkload(profile_for("bzip2"), seed=2).instructions(300))
        assert [instruction.vaddr for instruction in first] != [
            instruction.vaddr for instruction in second
        ]

    def test_instruction_mix_roughly_matches_profile(self):
        profile = profile_for("gcc")
        stream = list(SyntheticWorkload(profile, seed=3).instructions(6000))
        loads = sum(1 for instruction in stream if instruction.kind is InstructionKind.LOAD)
        branches = sum(1 for instruction in stream if instruction.kind is InstructionKind.BRANCH)
        assert loads / len(stream) == pytest.approx(profile.instruction_mix["load"], abs=0.05)
        assert branches / len(stream) == pytest.approx(profile.instruction_mix["branch"], abs=0.05)

    def test_memory_addresses_stay_inside_footprint(self):
        profile = profile_for("hmmer")
        workload = SyntheticWorkload(profile, seed=4)
        data_start, data_end = workload.data_range()
        for instruction in workload.instructions(3000):
            if instruction.vaddr is not None:
                assert data_start <= instruction.vaddr < data_end

    def test_syscalls_emitted_at_profile_interval(self):
        stream = list(SyntheticWorkload(profile_for("xalancbmk"), seed=5).instructions(14000))
        syscalls = sum(1 for instruction in stream if instruction.kind is InstructionKind.SYSCALL)
        assert syscalls == 14000 // profile_for("xalancbmk").syscall_interval

    def test_warmup_addresses_cover_reuse_windows(self):
        workload = SyntheticWorkload(profile_for("astar"), seed=6)
        addresses = workload.warmup_addresses()
        assert len(addresses) >= profile_for("astar").far_window_lines
        assert len(workload.warmup_code_addresses()) == profile_for("astar").code_footprint_bytes // 64

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_branch_has_an_outcome_and_target(self, seed):
        workload = SyntheticWorkload(profile_for("sjeng"), seed=seed)
        for instruction in workload.instructions(400):
            if instruction.kind is InstructionKind.BRANCH:
                assert instruction.branch_id is not None
                assert instruction.target is not None
