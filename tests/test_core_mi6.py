"""Tests for the MI6 layer: protection, purge, variants, processor, isolation."""

import pytest

from repro.common.errors import ConfigurationError, ProtectionFault
from repro.core.config import MI6Config
from repro.core.isolation import llc_sets_disjoint, timing_independence_report, verify_purged_state
from repro.core.processor import MI6Processor
from repro.core.protection import ProtectionDomain, RegionBitvector
from repro.core.variants import Variant, all_variants, config_for_variant, variant_description
from repro.mem.address import AddressMap, IndexFunction
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.spec_cint2006 import profile_for


class TestRegionBitvector:
    def setup_method(self):
        self.address_map = AddressMap()
        self.bitvector = RegionBitvector(self.address_map)

    def test_grant_and_revoke(self):
        self.bitvector.grant(3)
        assert self.bitvector.is_allowed(self.address_map.region_base(3))
        self.bitvector.revoke(3)
        assert not self.bitvector.is_allowed(self.address_map.region_base(3))

    def test_check_or_fault_raises(self):
        with pytest.raises(ProtectionFault):
            self.bitvector.check_or_fault(self.address_map.region_base(5))

    def test_set_regions_replaces(self):
        self.bitvector.set_regions({1, 2})
        assert self.bitvector.allowed_regions() == {1, 2}
        self.bitvector.set_regions({4})
        assert self.bitvector.allowed_regions() == {4}

    def test_out_of_dram_address_denied(self):
        assert self.bitvector.is_allowed(self.address_map.dram_bytes + 64) is False

    def test_invalid_region_rejected(self):
        with pytest.raises(ConfigurationError):
            self.bitvector.grant(64)


class TestProtectionDomain:
    def test_overlap_detection(self):
        domain_a = ProtectionDomain(1, "a", regions={1, 2}, cores={0})
        domain_b = ProtectionDomain(2, "b", regions={3}, cores={1})
        domain_c = ProtectionDomain(3, "c", regions={2}, cores={2})
        assert not domain_a.overlaps(domain_b)
        assert domain_a.overlaps(domain_c)

    def test_identity_table_covers_only_owned_regions(self):
        address_map = AddressMap(dram_bytes=64 * 1024 * 1024, num_regions=4)
        domain = ProtectionDomain(1, "os", regions={2})
        table = domain.build_identity_table(address_map)
        inside = address_map.region_base(2) + 4096
        outside = address_map.region_base(1)
        assert table.translate(inside) == inside
        assert table.translate(outside) is None


class TestVariants:
    def test_all_seven_variants_exist(self):
        assert len(all_variants()) == 7

    def test_fpma_combines_four_mechanisms(self):
        config = config_for_variant(Variant.F_P_M_A)
        assert config.flush_on_context_switch
        assert config.set_partition_llc
        assert config.partition_mshrs
        assert config.llc_arbiter
        assert not config.nonspec_memory

    def test_effective_llc_config_reflects_switches(self):
        base = config_for_variant(Variant.BASE).effective_llc_config()
        arb = config_for_variant(Variant.ARB).effective_llc_config()
        part = config_for_variant(Variant.PART).effective_llc_config()
        miss = config_for_variant(Variant.MISS).effective_llc_config()
        assert base.extra_pipeline_latency == 0
        assert arb.extra_pipeline_latency == 8          # 16 cores / 2
        assert part.index_function is IndexFunction.SET_PARTITIONED
        assert miss.mshr.total_entries == 12 and miss.mshr.banks == 4

    def test_every_variant_has_a_description(self):
        for variant in all_variants():
            assert variant_description(variant)

    def test_describe_renders_figure4_table(self):
        text = config_for_variant(Variant.BASE).describe()
        assert "80-entry ROB" in text
        assert "120-cycle latency" in text


class TestPurge:
    def build_processor(self):
        return MI6Processor(config_for_variant(Variant.FLUSH))

    def test_purge_scrubs_and_matches_pristine_observable_state(self):
        pristine = MI6Processor(config_for_variant(Variant.FLUSH)).purge_unit.observable_state()
        processor = self.build_processor()
        processor.run_workload("hmmer", instructions=3000, warm_up=False)
        assert processor.hierarchy.l1d.cache.valid_line_count() > 0
        processor.purge_unit.execute()
        mismatches = verify_purged_state(processor.purge_unit, pristine)
        assert mismatches == []

    def test_purge_stall_is_512_cycles_and_data_independent(self):
        processor = self.build_processor()
        empty_stall = processor.purge_unit.stall_cycles()
        processor.run_workload("hmmer", instructions=2000, warm_up=False)
        assert processor.purge_unit.stall_cycles() == empty_stall == 512

    def test_purge_counts_in_stats(self):
        processor = self.build_processor()
        processor.purge_unit.execute()
        assert processor.stats.value("purge.executions") == 1


class TestIsolationCheckers:
    def test_partitioned_index_gives_disjoint_sets(self):
        assert llc_sets_disjoint({1, 2}, {3, 4}, index_function=IndexFunction.SET_PARTITIONED)

    def test_baseline_index_shares_sets(self):
        assert not llc_sets_disjoint({1, 2}, {3, 4}, index_function=IndexFunction.BASELINE)

    def test_timing_independence_secure_vs_baseline(self):
        secure = timing_independence_report(secure=True)
        insecure = timing_independence_report(secure=False)
        assert secure.independent
        assert not insecure.independent
        assert insecure.max_difference > 0


class TestMI6Processor:
    def test_run_produces_consistent_result(self):
        processor = MI6Processor(config_for_variant(Variant.BASE))
        run = processor.run_workload("hmmer", instructions=4000)
        assert run.instructions == 4000
        assert run.cycles > 0
        assert run.result.ipc > 0

    def test_runs_are_deterministic(self):
        first = MI6Processor(config_for_variant(Variant.BASE)).run_workload("bzip2", instructions=3000)
        second = MI6Processor(config_for_variant(Variant.BASE)).run_workload("bzip2", instructions=3000)
        assert first.cycles == second.cycles

    def test_workload_domain_pages_stay_inside_regions(self):
        processor = MI6Processor(config_for_variant(Variant.BASE))
        workload = SyntheticWorkload(profile_for("hmmer"))
        domain = processor.build_workload_domain(workload)
        address_map = processor.config.address_map
        for physical_page in domain.page_table.mapped_physical_pages():
            region = address_map.region_of(physical_page * 4096)
            assert region in domain.regions

    def test_accesses_outside_domain_are_blocked(self):
        processor = MI6Processor(config_for_variant(Variant.F_P_M_A))
        workload = SyntheticWorkload(profile_for("hmmer"))
        processor.install_domain(processor.build_workload_domain(workload))
        outside = processor.config.address_map.region_base(60)
        assert processor.region_bitvector.is_allowed(outside) is False

    def test_part_variant_increases_gcc_llc_misses(self):
        base = MI6Processor(config_for_variant(Variant.BASE)).run_workload("gcc", instructions=6000)
        part = MI6Processor(config_for_variant(Variant.PART)).run_workload("gcc", instructions=6000)
        assert part.result.llc_mpki > base.result.llc_mpki

    def test_flush_variant_increases_branch_mispredictions(self):
        short_traps = MI6Config(trap_interval_instructions=2000)
        base = MI6Processor(config_for_variant(Variant.BASE, short_traps)).run_workload(
            "astar", instructions=8000
        )
        flush = MI6Processor(config_for_variant(Variant.FLUSH, short_traps)).run_workload(
            "astar", instructions=8000
        )
        assert flush.result.branch_mpki > base.result.branch_mpki
        assert flush.result.flush_stall_cycles > 0

    def test_fpma_variant_costs_more_than_base(self):
        base = MI6Processor(config_for_variant(Variant.BASE)).run_workload("xalancbmk", instructions=6000)
        secured = MI6Processor(config_for_variant(Variant.F_P_M_A)).run_workload("xalancbmk", instructions=6000)
        assert secured.overhead_vs(base) > 0
