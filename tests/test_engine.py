"""Tests for the experiment engine, serialization, and result store."""

import json

import pytest

from repro.analysis.engine import (
    EvaluationSettings,
    ExperimentSpec,
    ParallelRunner,
    RunRequest,
    execute_request,
    request_for,
)
from repro.analysis.store import ResultStore
from repro.core.config import MI6Config
from repro.core.processor import MI6Processor
from repro.core.serialization import (
    config_digest,
    config_from_dict,
    config_to_dict,
    run_from_dict,
    run_to_dict,
)
from repro.core.simulator import Simulator
from repro.core.variants import Variant, all_variants, config_for_variant, parse_variant

SMALL = EvaluationSettings(instructions=2500)


def runs_equal(first, second) -> bool:
    """Bit-identical comparison of two workload runs."""
    return run_to_dict(first) == run_to_dict(second)


class TestSerialization:
    def test_config_round_trips_for_every_variant(self):
        for variant in all_variants():
            config = config_for_variant(variant)
            assert config_from_dict(config_to_dict(config)) == config

    def test_config_dict_is_json_compatible(self):
        encoded = json.dumps(config_to_dict(config_for_variant(Variant.F_P_M_A)))
        assert config_from_dict(json.loads(encoded)) == config_for_variant(Variant.F_P_M_A)

    def test_digest_is_stable_and_content_sensitive(self):
        first = config_for_variant(Variant.PART)
        second = config_for_variant(Variant.PART)
        assert config_digest(first) == config_digest(second)
        digests = {config_digest(config_for_variant(v)) for v in all_variants()}
        assert len(digests) == len(all_variants())
        tweaked = MI6Config(trap_interval_instructions=12_345)
        assert config_digest(tweaked) != config_digest(MI6Config())

    def test_run_round_trips_through_json(self):
        run = Simulator.for_variant(Variant.FLUSH).run("hmmer", instructions=2000)
        restored = run_from_dict(json.loads(json.dumps(run_to_dict(run))))
        assert restored.benchmark == run.benchmark
        assert restored.config_name == run.config_name
        assert restored.cycles == run.cycles
        assert restored.instructions == run.instructions
        assert dict(restored.result.stats.counters()) == dict(run.result.stats.counters())
        assert restored.result.branch_mpki == run.result.branch_mpki
        assert restored.result.flush_stall_cycles == run.result.flush_stall_cycles

    def test_settings_round_trip_and_environment(self, monkeypatch):
        settings = EvaluationSettings(instructions=4000, seed=7)
        assert EvaluationSettings.from_dict(settings.to_dict()) == settings
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
        monkeypatch.setenv("REPRO_BENCH_SEED", "99")
        from_env = EvaluationSettings.from_environment()
        assert from_env.instructions == 1234
        assert from_env.seed == 99

    def test_parse_variant_accepts_both_spellings(self):
        assert parse_variant("F+P+M+A") is Variant.F_P_M_A
        assert parse_variant("f_p_m_a") is Variant.F_P_M_A
        assert parse_variant("base") is Variant.BASE
        with pytest.raises(ValueError):
            parse_variant("TURBO")


class TestSimulator:
    def test_matches_direct_processor_construction(self):
        config = config_for_variant(Variant.ARB)
        direct = MI6Processor(config, seed=2019).run_workload("gcc", instructions=2500)
        via_facade = Simulator(config, seed=2019).run("gcc", instructions=2500)
        assert runs_equal(direct, via_facade)

    def test_fresh_machine_runs_are_order_independent(self):
        simulator = Simulator.for_variant(Variant.BASE)
        first = simulator.run("hmmer", instructions=2000)
        simulator.run("mcf", instructions=2000)
        again = simulator.run("hmmer", instructions=2000)
        assert runs_equal(first, again)


class TestResultStore:
    def test_disk_round_trip(self, tmp_path):
        request = request_for(Variant.BASE, "hmmer", SMALL)
        run = execute_request(request)
        store = ResultStore(tmp_path / "cache")
        store.put(request.cache_key(), run)

        fresh = ResultStore(tmp_path / "cache")
        restored = fresh.get(request.cache_key())
        assert restored is not None
        assert fresh.disk_hits == 1
        assert runs_equal(restored, run)
        # Second lookup is served from the memory layer.
        assert fresh.get(request.cache_key()) is restored
        assert fresh.memory_hits == 1

    def test_invalidates_on_config_change(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        request = request_for(Variant.BASE, "hmmer", SMALL)
        store.put(request.cache_key(), execute_request(request))

        changed = RunRequest(
            config=MI6Config(trap_interval_instructions=9_999),
            benchmark="hmmer",
            instructions=SMALL.instructions,
            seed=SMALL.seed,
        )
        assert changed.cache_key() != request.cache_key()
        assert ResultStore(tmp_path / "cache").get(changed.cache_key()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        request = request_for(Variant.BASE, "hmmer", SMALL)
        key = request.cache_key()
        store.put(key, execute_request(request))
        path = store._path_for(key)
        path.write_text("{not json")
        assert ResultStore(tmp_path / "cache").get(key) is None
        assert not path.exists()  # corrupt entry dropped

    def test_memory_only_store_never_touches_disk(self):
        store = ResultStore.in_memory()
        request = request_for(Variant.BASE, "hmmer", SMALL)
        run = execute_request(request)
        store.put(request.cache_key(), run)
        assert store.get(request.cache_key()) is run
        assert store.directory is None


class TestParallelRunner:
    SPEC = ExperimentSpec(
        variants=(Variant.BASE, Variant.ARB, Variant.NONSPEC),
        benchmarks=("hmmer", "libquantum"),
        instructions=2500,
    )

    def test_serial_and_parallel_sweeps_are_bit_identical(self):
        serial = ParallelRunner(ResultStore.in_memory(), jobs=1).run_spec(self.SPEC)
        parallel = ParallelRunner(ResultStore.in_memory(), jobs=2).run_spec(self.SPEC)
        assert len(serial.runs) == self.SPEC.size
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert runs_equal(serial_run, parallel_run)

    def test_warm_start_from_disk(self, tmp_path):
        cold = ParallelRunner(ResultStore(tmp_path / "cache"), jobs=2)
        cold_result = cold.run_spec(self.SPEC)
        assert cold.executed_runs == self.SPEC.size
        assert cold.warm_runs == 0

        warm = ParallelRunner(ResultStore(tmp_path / "cache"), jobs=2)
        warm_result = warm.run_spec(self.SPEC)
        assert warm.executed_runs == 0
        assert warm.warm_runs == self.SPEC.size
        for cold_run, warm_run in zip(cold_result.runs, warm_result.runs):
            assert runs_equal(cold_run, warm_run)

    def test_duplicate_requests_simulate_once(self):
        runner = ParallelRunner(ResultStore.in_memory())
        request = request_for(Variant.BASE, "hmmer", SMALL)
        first, second = runner.run([request, request])
        assert first is second
        assert runner.executed_runs == 1
        # Store counters see one miss (one simulation), not one per position.
        assert runner.store.misses == 1

    def test_nonspec_truncation_preserved(self):
        requests = {
            request.config.name: request for request in self.SPEC.requests()
        }
        # NONSPEC runs max(2000, instructions // 2) = 2000 for this spec.
        assert requests["NONSPEC"].instructions == 2000
        assert requests["BASE"].instructions == 2500

    def test_experiment_result_indexing(self):
        result = ParallelRunner(ResultStore.in_memory()).run_spec(self.SPEC)
        run = result.run_for(Variant.ARB, "libquantum")
        assert run.config_name == "ARB"
        assert run.benchmark == "libquantum"
        assert result.overhead_percent(Variant.ARB, "libquantum") > 0
        # NONSPEC committed fewer instructions: CPI-based comparison.
        assert result.overhead_percent(Variant.NONSPEC, "hmmer") != 0


class TestSpec:
    def test_create_defaults_to_full_grid(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SEED", raising=False)
        spec = ExperimentSpec.create()
        assert len(spec.variants) == 7
        assert len(spec.benchmarks) == 11
        assert spec.seeds == (2019,)
        assert spec.size == 77

    def test_create_rejects_explicitly_empty_selections(self):
        with pytest.raises(ValueError, match="variants"):
            ExperimentSpec.create(variants=[])
        with pytest.raises(ValueError, match="benchmarks"):
            ExperimentSpec.create(benchmarks=[])
        with pytest.raises(ValueError, match="seeds"):
            ExperimentSpec.create(seeds=[])

    def test_requests_expand_in_deterministic_order(self):
        spec = ExperimentSpec(
            variants=(Variant.BASE, Variant.ARB),
            benchmarks=("gcc", "mcf"),
            seeds=(1, 2),
            instructions=2500,
        )
        cells = [(r.config.name, r.benchmark, r.seed) for r in spec.requests()]
        assert cells == [
            ("BASE", "gcc", 1),
            ("BASE", "gcc", 2),
            ("BASE", "mcf", 1),
            ("BASE", "mcf", 2),
            ("ARB", "gcc", 1),
            ("ARB", "gcc", 2),
            ("ARB", "mcf", 1),
            ("ARB", "mcf", 2),
        ]
