"""Wire codec: requests and result envelopes over JSON documents.

The daemon's HTTP API, the CLI's args->request path, and ``--remote``
all stand on two promises tested here:

* every request kind round-trips through ``to_wire`` /
  ``request_from_wire`` exactly (canonical spellings) or
  cache-key-identically (enum/``MitigationSet`` variant spellings,
  which canonicalise to spec strings on encode);
* decoding is strict — unknown kinds, unknown fields, extra top-level
  keys, and version skew are loud :class:`WireError`\\ s, never silent
  reinterpretation.
"""

import json

import pytest

from repro.analysis.engine import EvaluationSettings
from repro.analysis.store import ResultStore
from repro.api import (
    WIRE_VERSION,
    FleetRequest,
    ScenarioRequest,
    ServiceRequest,
    Session,
    SweepRequest,
    WireError,
    WorkloadRequest,
    request_from_wire,
    result_from_wire,
    result_to_wire,
)
from repro.core.config import MI6Config
from repro.core.serialization import run_to_dict
from repro.core.variants import Variant

#: One canonically spelled instance of each kind, with non-default
#: values on representative fields so the round trip is not vacuous.
CANONICAL_REQUESTS = [
    WorkloadRequest(variant="FLUSH+MISS", benchmark="mcf", instructions=4000, seed=7),
    SweepRequest(
        variants=("BASE", "F+P+M+A"), benchmarks=("gcc", "mcf"), seeds=(1, 2), instructions=3000
    ),
    ScenarioRequest(
        scenarios=("prime_probe",), variants=("BASE", "PART"), seeds=(3,), num_cores=4
    ),
    ServiceRequest(
        policies=("fifo",), variants=("BASE",), loads=(0.5, 0.9), seeds=(5,), num_tenants=6
    ),
    FleetRequest(
        variants=("BASE",), loads=(0.4,), seeds=(11,), num_shards=2, queue_depth=8
    ),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_value", CANONICAL_REQUESTS, ids=lambda r: r.wire_kind
    )
    def test_canonical_round_trip_is_exact(self, request_value):
        document = request_value.to_wire()
        assert document["wire_version"] == WIRE_VERSION
        assert document["kind"] == request_value.wire_kind
        assert request_from_wire(document) == request_value

    @pytest.mark.parametrize(
        "request_value", CANONICAL_REQUESTS, ids=lambda r: r.wire_kind
    )
    def test_documents_survive_json(self, request_value):
        document = request_value.to_wire()
        recovered = json.loads(json.dumps(document))
        assert request_from_wire(recovered) == request_value
        # Encoding is a pure function: re-encoding the decoded request
        # reproduces the document byte for byte.
        assert json.dumps(
            request_from_wire(recovered).to_wire(), sort_keys=True
        ) == json.dumps(document, sort_keys=True)

    def test_enum_variants_canonicalise_to_spec_strings(self):
        request = SweepRequest(variants=(Variant.BASE, Variant.F_P_M_A))
        document = request.to_wire()
        assert document["fields"]["variants"] == ["BASE", "F+P+M+A"]
        decoded = request_from_wire(document)
        assert decoded.variants == ("BASE", "F+P+M+A")
        # Equivalent, not ``==``: the enum spelling became the canonical
        # string, and both expand to the same fully-specified engine
        # requests (hence the same cache keys).
        settings = EvaluationSettings(instructions=2000, seed=1)
        assert decoded.resolve(settings).requests() == request.resolve(settings).requests()

    def test_workload_config_round_trips(self):
        request = WorkloadRequest(benchmark="gcc", config=MI6Config(), instructions=2000)
        decoded = request_from_wire(json.loads(json.dumps(request.to_wire())))
        assert decoded.config == request.config

    def test_defaults_apply_for_omitted_fields(self):
        decoded = request_from_wire(
            {"wire_version": WIRE_VERSION, "kind": "sweep", "fields": {}}
        )
        assert decoded == SweepRequest()


class TestRequestStrictness:
    def test_version_mismatch_rejected(self):
        document = SweepRequest().to_wire()
        document["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version mismatch"):
            request_from_wire(document)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="unknown request kind"):
            request_from_wire(
                {"wire_version": WIRE_VERSION, "kind": "banquet", "fields": {}}
            )

    @pytest.mark.parametrize(
        "request_value", CANONICAL_REQUESTS, ids=lambda r: r.wire_kind
    )
    def test_unknown_field_rejected_for_every_kind(self, request_value):
        document = request_value.to_wire()
        document["fields"]["turbo"] = True
        with pytest.raises(WireError, match="unknown field"):
            request_from_wire(document)

    def test_unknown_top_level_key_rejected(self):
        document = SweepRequest().to_wire()
        document["priority"] = "high"
        with pytest.raises(WireError, match="unknown wire document key"):
            request_from_wire(document)

    def test_missing_top_level_key_rejected(self):
        document = SweepRequest().to_wire()
        del document["fields"]
        with pytest.raises(WireError, match="missing key"):
            request_from_wire(document)

    def test_non_object_document_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            request_from_wire([1, 2, 3])

    def test_malformed_variant_spec_rejected(self):
        document = SweepRequest().to_wire()
        document["fields"]["variants"] = ["BASE", "WARP"]
        with pytest.raises(WireError, match="bad value for 'sweep' field 'variants'"):
            request_from_wire(document)


class TestResultEnvelope:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(ResultStore.in_memory())

    def _round_trip(self, result, settings=None):
        document = json.loads(json.dumps(result_to_wire(result)))
        return result_from_wire(document, settings=settings)

    def test_sweep_envelope_bit_identical_modulo_wall_time(self, session):
        request = SweepRequest(
            variants=("BASE", "FLUSH"), benchmarks=("gcc",), seeds=(1,), instructions=2000
        )
        result = session.run(request)
        decoded = self._round_trip(result)
        local_doc, wire_doc = result_to_wire(result), result_to_wire(decoded)
        local_doc.pop("wall_time_seconds")
        wire_doc.pop("wall_time_seconds")
        assert json.dumps(local_doc, sort_keys=True) == json.dumps(wire_doc, sort_keys=True)
        # Keyed accessors keep working on the decoded side.
        assert decoded.overhead_percent("FLUSH", "gcc", 1) == result.overhead_percent(
            "FLUSH", "gcc", 1
        )
        assert [entry.provenance.cache_key for entry in decoded] == [
            entry.provenance.cache_key for entry in result
        ]

    def test_scenario_envelope_round_trips(self, session):
        result = session.run(
            ScenarioRequest(scenarios=("prime_probe",), variants=("BASE",), seeds=(1,))
        )
        decoded = self._round_trip(result)
        assert [outcome.to_dict() for outcome in decoded.outcomes] == [
            outcome.to_dict() for outcome in result.outcomes
        ]

    def test_service_envelope_round_trips(self, session):
        result = session.run(
            ServiceRequest(
                policies=("fifo",),
                variants=("BASE",),
                loads=(0.5,),
                seeds=(1,),
                num_cores=2,
                num_tenants=2,
                requests=6,
                instructions=300,
            )
        )
        decoded = self._round_trip(result)
        assert [outcome.to_dict() for outcome in decoded.service_outcomes] == [
            outcome.to_dict() for outcome in result.service_outcomes
        ]

    def test_fleet_envelope_round_trips(self, session):
        result = session.run(
            FleetRequest(
                variants=("BASE",),
                loads=(0.5,),
                seeds=(1,),
                num_shards=2,
                shard_cores=2,
                num_tenants=2,
                requests=6,
                instructions=300,
            )
        )
        decoded = self._round_trip(result)
        assert [outcome.to_dict() for outcome in decoded.fleet_outcomes] == [
            outcome.to_dict() for outcome in result.fleet_outcomes
        ]

    def test_workload_envelope_round_trips(self, session):
        result = session.run(WorkloadRequest(benchmark="gcc", instructions=2000, seed=1))
        decoded = self._round_trip(result)
        assert run_to_dict(decoded.value) == run_to_dict(result.value)
        assert decoded.provenance == result.provenance

    def test_envelope_strictness(self, session):
        result = session.run(WorkloadRequest(benchmark="gcc", instructions=2000, seed=1))
        document = result_to_wire(result)
        document["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version mismatch"):
            result_from_wire(document)
        document = result_to_wire(result)
        document["verdict"] = "fast"
        with pytest.raises(WireError, match="unknown"):
            result_from_wire(document)
