"""Tests for TLBs, page tables, MSHRs, and the DRAM controller."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.dram import DramConfig, DramController
from repro.mem.mshr import MshrConfig, MshrFile
from repro.mem.page_table import PageTable, PageTableWalker
from repro.mem.tlb import TranslationCache, Tlb


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb("dtlb", entries=32)
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1008) is True   # same page

    def test_capacity_eviction_is_lru(self):
        tlb = Tlb("tiny", entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)        # refresh page 0
        tlb.access(0x2000)        # evicts page 1
        assert tlb.lookup(0x0000) is True
        assert tlb.lookup(0x1000) is False

    def test_flush_discards_everything(self):
        tlb = Tlb("dtlb", entries=32)
        for page in range(8):
            tlb.access(page * 4096)
        assert tlb.flush_all() == 8
        assert tlb.resident_entries() == 0

    def test_set_associative_geometry(self):
        tlb = Tlb("l2tlb", entries=1024, ways=4)
        assert tlb.num_sets == 256


class TestTranslationCache:
    def test_deeper_hits_after_fill(self):
        tcache = TranslationCache()
        assert tcache.deepest_hit_level(0x4000_0000) == 0
        tcache.fill(0x4000_0000)
        assert tcache.deepest_hit_level(0x4000_0000) > 0

    def test_flush(self):
        tcache = TranslationCache()
        tcache.fill(0x1000)
        assert tcache.flush_all() > 0
        assert tcache.deepest_hit_level(0x1000) == 0


class TestPageTable:
    def test_translate_mapped_page(self):
        table = PageTable()
        table.map_page(0x4000_0000, 0x10_0000)
        assert table.translate(0x4000_0123) == 0x10_0123
        assert table.translate(0x5000_0000) is None

    def test_identity_table(self):
        table = PageTable.identity(64 * 1024)
        assert table.translate(0x3123) == 0x3123

    def test_walker_charges_levels_and_honours_translation_cache_skips(self):
        table = PageTable()
        table.map_page(0x1000, 0x2000)
        walker = PageTableWalker()
        full = walker.walk(table, 0x1000)
        short = walker.walk(table, 0x1000, levels_skipped=2)
        assert full.memory_accesses == 3
        assert short.memory_accesses == 1
        assert full.physical_address == 0x2000

    def test_walker_reports_page_fault(self):
        walker = PageTableWalker()
        result = walker.walk(PageTable(), 0xDEAD_0000)
        assert result.faulted is True


class TestMshrFile:
    def test_sizing_rule_of_section_5_2(self):
        MshrConfig(total_entries=12).validate_against_dram(24)
        with pytest.raises(ConfigurationError):
            MshrConfig(total_entries=16).validate_against_dram(24)

    def test_partitioned_capacity_per_core(self):
        config = MshrConfig(total_entries=12, partitioned=True, num_cores=4)
        assert config.entries_per_core == 3

    def test_allocation_respects_partition(self):
        mshrs = MshrFile(MshrConfig(total_entries=4, partitioned=True, num_cores=2))
        for _ in range(2):
            assert mshrs.can_allocate(core=0, set_index=0)
            mshrs.allocate(core=0, line_address=0)
        assert mshrs.can_allocate(core=0, set_index=0) is False
        assert mshrs.can_allocate(core=1, set_index=0) is True

    def test_bank_conflict_with_whole_file_stall(self):
        config = MshrConfig(total_entries=4, banks=4, stall_whole_file_on_full_bank=True)
        mshrs = MshrFile(config)
        mshrs.allocate(core=0, line_address=0)  # bank 0 now full (1 entry per bank)
        assert mshrs.can_allocate(core=0, set_index=4) is False  # other bank also refused

    def test_release_frees_entry(self):
        mshrs = MshrFile(MshrConfig(total_entries=1))
        entry = mshrs.allocate(core=0, line_address=0)
        assert mshrs.can_allocate(0, 0) is False
        mshrs.release(entry.entry_id)
        assert mshrs.can_allocate(0, 0) is True


class TestDramController:
    def test_constant_latency(self):
        dram = DramController(DramConfig(latency_cycles=120))
        request = dram.submit(core=0, line_address=1, is_write=False, now=10)
        assert request.complete_cycle == 130

    def test_backpressure_when_full(self):
        dram = DramController(DramConfig(latency_cycles=50, max_outstanding=2))
        dram.submit(0, 1, False, now=0)
        dram.submit(0, 2, False, now=0)
        delayed = dram.submit(0, 3, False, now=0)
        assert delayed.accept_cycle == 50

    def test_reordering_model_leaks_row_hits(self):
        dram = DramController(DramConfig(constant_latency=False, row_hit_latency_cycles=30, latency_cycles=100))
        first = dram.submit(0, 8, False, now=0)
        second = dram.submit(0, 8, False, now=0)
        assert first.complete_cycle - first.accept_cycle == 100
        assert second.complete_cycle - second.accept_cycle == 30
