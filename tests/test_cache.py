"""Tests for the set-associative cache and replacement policies."""

from hypothesis import given, settings, strategies as st

from repro.common.rng import DeterministicRng
from repro.mem.address import CacheGeometry
from repro.mem.cache import SetAssociativeCache
from repro.mem.replacement import LruPolicy, PseudoRandomPolicy, SelfCleaningLruPolicy


def small_cache(policy=None, ways=4, sets=8):
    geometry = CacheGeometry(size_bytes=ways * sets * 64, ways=ways, line_bytes=64)
    policy = policy or LruPolicy(geometry.num_sets, geometry.ways)
    return SetAssociativeCache("test", geometry, policy)


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000).hit is False
        assert cache.access(0x1000).hit is True
        assert cache.miss_count == 1
        assert cache.hit_count == 1

    def test_eviction_reports_victim(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 * 64, owner=1)
        cache.access(1 * 64, owner=1)
        result = cache.access(2 * 64, owner=2)
        assert result.hit is False
        assert result.evicted_tag is not None
        assert result.evicted_owner == 1

    def test_dirty_eviction_flagged_as_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        result = cache.access(64)
        assert result.evicted_dirty is True

    def test_flush_all_clears_every_line(self):
        cache = small_cache()
        for index in range(16):
            cache.access(index * 64)
        flushed = cache.flush_all()
        assert flushed == 16
        assert cache.valid_line_count() == 0
        assert not cache.lookup(0)

    def test_owner_occupancy_tracking(self):
        cache = small_cache()
        cache.access(0x0000, owner=1)
        cache.access(0x4000, owner=2)
        occupancy = cache.occupancy_by_owner()
        assert occupancy[1] == 1 and occupancy[2] == 1

    def test_lookup_does_not_allocate(self):
        cache = small_cache()
        assert cache.lookup(0x2000) is False
        assert cache.valid_line_count() == 0

    @settings(max_examples=40, deadline=None)
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=120))
    def test_capacity_never_exceeded(self, addresses):
        cache = small_cache(ways=4, sets=8)
        for address in addresses:
            cache.access(address)
        assert cache.valid_line_count() <= 32

    @settings(max_examples=40, deadline=None)
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=60))
    def test_most_recent_access_always_resident(self, addresses):
        cache = small_cache(ways=4, sets=8)
        for address in addresses:
            cache.access(address)
            assert cache.lookup(address)


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LruPolicy(num_sets=1, ways=2)
        cache = SetAssociativeCache("lru", CacheGeometry(2 * 64, 2, 64), policy)
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)             # 1*64 is now least recently used
        cache.access(2 * 64)             # evicts 1*64
        assert cache.lookup(0 * 64)
        assert not cache.lookup(1 * 64)

    def test_pseudo_random_prefers_invalid_ways(self):
        policy = PseudoRandomPolicy(DeterministicRng(9))
        assert policy.victim(0, [True, False, True]) == 1

    def test_pseudo_random_is_stateless_across_reset(self):
        policy = PseudoRandomPolicy(DeterministicRng(9))
        policy.reset()  # must not raise nor hold any state
        assert policy.holds_program_state() is False

    def test_self_cleaning_lru_restores_canonical_order(self):
        policy = SelfCleaningLruPolicy(num_sets=1, ways=4)
        policy.touch(0, 2)
        policy.touch(0, 3)
        policy.note_set_empty(0)
        assert policy.recency_order(0) == [0, 1, 2, 3]
