"""Tests for the functional LLC model and the detailed (Figure 2/3) LLC."""

from repro.common.rng import DeterministicRng
from repro.mem.address import AddressMap, IndexFunction
from repro.mem.dram import DramController
from repro.mem.llc import LastLevelCache, LlcConfig
from repro.mem.llc_detail import DetailedLlcConfig, LlcTrafficSimulator, request_latencies
from repro.mem.mshr import MshrConfig


def build_llc(**overrides):
    config = LlcConfig(**overrides)
    return LastLevelCache(config, AddressMap(), DramController(), rng=DeterministicRng(0))


class TestFunctionalLlc:
    def test_hit_and_miss_latency(self):
        llc = build_llc(hit_latency=16)
        miss = llc.access(0x1000)
        hit = llc.access(0x1000)
        assert miss.hit is False and miss.latency == 16 + 120
        assert hit.hit is True and hit.latency == 16

    def test_arbiter_latency_added_to_every_access(self):
        llc = build_llc(extra_pipeline_latency=8)
        miss = llc.access(0x2000)
        hit = llc.access(0x2000)
        assert miss.latency == 16 + 8 + 120
        assert hit.latency == 16 + 8

    def test_partitioned_index_groups_by_region(self):
        llc = build_llc(index_function=IndexFunction.SET_PARTITIONED, region_index_bits=2)
        address_map = AddressMap()
        low_bits = llc.config.geometry.index_bits - 2
        assert llc.set_index(address_map.region_base(1)) >> low_bits == 1

    def test_scrub_region_sets_removes_only_that_region(self):
        llc = build_llc()
        address_map = AddressMap()
        region1_address = address_map.region_base(1)
        region2_address = address_map.region_base(2)
        llc.access(region1_address, owner=1)
        llc.access(region2_address, owner=2)
        scrubbed = llc.scrub_region_sets(1)
        assert scrubbed == 1
        assert not llc.lookup(region1_address)
        assert llc.lookup(region2_address)

    def test_writeback_detected_on_dirty_eviction(self):
        llc = build_llc()
        # Fill one set completely with dirty lines, then overflow it.
        base = 0
        for way in range(llc.config.geometry.ways):
            llc.access(base + way * llc.config.geometry.num_sets * 64, is_write=True)
        outcome = llc.access(base + 16 * llc.config.geometry.num_sets * 64)
        assert outcome.writeback is True


class TestDetailedLlcTimingIndependence:
    @staticmethod
    def victim_trace():
        return [(index * 30, 0x100 + index, False) for index in range(24)]

    @staticmethod
    def attacker_trace(requests=250):
        # Attacker lines live in a DRAM region of a different colour than
        # the victim's (the monitor guarantees this for distinct domains).
        return [(index * 2, 0x4000 + index * 7, True) for index in range(requests)]

    def run_pair(self, secure):
        config = DetailedLlcConfig(secure=secure)
        alone = LlcTrafficSimulator(config).run({0: self.victim_trace(), 1: []})
        contended = LlcTrafficSimulator(config).run(
            {0: self.victim_trace(), 1: self.attacker_trace()}
        )
        return request_latencies(alone, 0), request_latencies(contended, 0)

    def test_mi6_llc_is_timing_independent(self):
        alone, contended = self.run_pair(secure=True)
        assert alone and alone == contended

    def test_baseline_llc_leaks_timing(self):
        alone, contended = self.run_pair(secure=False)
        assert alone != contended

    def test_all_requests_complete(self):
        config = DetailedLlcConfig(secure=True)
        results = LlcTrafficSimulator(config).run(
            {0: self.victim_trace(), 1: self.attacker_trace(100)}
        )
        assert len(results[0]) == len(self.victim_trace())
        assert len(results[1]) == 100

    def test_mshr_sizing_rule_enforced_for_secure_config(self):
        import pytest
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DetailedLlcConfig(secure=True, mshrs_per_core=16, dram_max_outstanding=24)

    def test_baseline_counts_mshr_stalls_under_load(self):
        config = DetailedLlcConfig(secure=False, total_mshrs=2, dram_latency=200)
        simulator = LlcTrafficSimulator(config)
        simulator.run({0: [(0, index * 11, False) for index in range(8)], 1: []})
        assert simulator.llc.stats.value("llc_detail.mshr_stall_cycles") > 0


class TestLlcMshrInteraction:
    def test_banked_mshr_config_accepted(self):
        llc = build_llc(mshr=MshrConfig(total_entries=12, banks=4, stall_whole_file_on_full_bank=True))
        assert llc.mshrs.config.entries_per_bank == 3
