"""Tests for the enclave-serving subsystem (repro/service)."""

import json

import pytest

from repro.analysis.engine import (
    ServiceRunRequest,
    ServiceSpec,
    execute_service_request,
    resolve_service_cycles,
)
from repro.analysis.figures import SERVICE_TABLE_TITLE, service_latency_rows
from repro.analysis.report import format_service_table
from repro.analysis.store import ResultStore
from repro.api import ServiceRequest, Session
from repro.cli import main as cli_main
from repro.common.errors import ConfigurationError
from repro.core.mitigations import config_for_spec
from repro.service import (
    LOAD_PROFILES,
    ServiceOutcome,
    create_policy,
    generate_arrivals,
    percentile,
    policy_names,
    register_policy,
    run_service,
    summarize_latencies,
    tenant_benchmarks,
)
from repro.service.schedulers import FifoPolicy

#: Small fleet shared by most tests: six tenants contending for two
#: cores keeps every policy busy while the suite stays fast.
SMALL = dict(num_cores=2, num_tenants=6, num_requests=60, instructions=1_500)


def small_request(policy="fifo", spec="F+P+M+A", seed=7, **overrides):
    from repro.analysis.engine import evaluation_config

    fields = dict(SMALL)
    fields.update(overrides)
    return ServiceRunRequest(
        policy=policy,
        config=evaluation_config(spec, fields["instructions"]),
        seed=seed,
        **fields,
    )


class TestArrivals:
    @pytest.mark.parametrize("profile", LOAD_PROFILES)
    def test_profiles_are_deterministic_and_ordered(self, profile):
        first = generate_arrivals(
            profile, num_requests=50, num_tenants=4, mean_gap_cycles=100, seed=3
        )
        second = generate_arrivals(
            profile, num_requests=50, num_tenants=4, mean_gap_cycles=100, seed=3
        )
        assert first == second
        assert len(first) == 50
        assert all(later.time >= earlier.time for earlier, later in zip(first, first[1:]))
        assert all(0 <= arrival.tenant < 4 for arrival in first)

    def test_profiles_differ_and_seeds_differ(self):
        base = generate_arrivals(
            "poisson", num_requests=40, num_tenants=4, mean_gap_cycles=100, seed=3
        )
        assert base != generate_arrivals(
            "poisson", num_requests=40, num_tenants=4, mean_gap_cycles=100, seed=4
        )
        assert base != generate_arrivals(
            "bursty", num_requests=40, num_tenants=4, mean_gap_cycles=100, seed=3
        )

    def test_bursty_concentrates_tenants(self):
        arrivals = generate_arrivals(
            "bursty", num_requests=80, num_tenants=8, mean_gap_cycles=200, seed=5
        )
        repeats = sum(
            1 for a, b in zip(arrivals, arrivals[1:]) if a.tenant == b.tenant
        )
        uniform = generate_arrivals(
            "poisson", num_requests=80, num_tenants=8, mean_gap_cycles=200, seed=5
        )
        uniform_repeats = sum(
            1 for a, b in zip(uniform, uniform[1:]) if a.tenant == b.tenant
        )
        assert repeats > uniform_repeats

    @pytest.mark.parametrize("profile", LOAD_PROFILES)
    def test_profiles_realize_the_configured_mean_gap(self, profile):
        # Offered load must be comparable across profiles: the realised
        # mean inter-arrival gap tracks mean_gap_cycles within a few
        # percent (diurnal in particular normalises by E[1/rate]).
        arrivals = generate_arrivals(
            profile, num_requests=4000, num_tenants=4, mean_gap_cycles=100, seed=11
        )
        mean_gap = arrivals[-1].time / len(arrivals)
        assert 90 <= mean_gap <= 110, (profile, mean_gap)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown load profile"):
            generate_arrivals(
                "weekly", num_requests=10, num_tenants=2, mean_gap_cycles=10, seed=1
            )


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile([7], 0.99) == 7
        assert percentile([], 0.5) == 0
        # Non-integer percents use the exact nearest-rank ceiling.
        assert percentile(values, 0.290) == 29
        assert percentile(values, 0.999) == 100

    def test_summary_fields(self):
        summary = summarize_latencies([4, 1, 3, 2])
        assert summary["min"] == 1 and summary["max"] == 4
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2


class TestPolicies:
    def test_registry_ships_three_policies(self):
        assert policy_names() == ["fifo", "affinity", "batch"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling policy"):
            create_policy("shortest-job-first")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy("fifo", FifoPolicy, "again")


class TestRunService:
    def test_bit_identical_repeats_and_json_roundtrip(self):
        request = small_request()
        first = execute_service_request(request)
        second = execute_service_request(request)
        assert first.to_dict() == second.to_dict()
        assert ServiceOutcome.from_dict(
            json.loads(json.dumps(first.to_dict()))
        ).to_dict() == first.to_dict()

    def test_all_requests_complete(self):
        outcome = execute_service_request(small_request(policy="affinity"))
        assert outcome.requests == SMALL["num_requests"]
        assert outcome.latency["p99"] >= outcome.latency["p50"] > 0
        assert 0.0 < outcome.utilization <= 1.0

    def test_purge_charging_follows_flush(self):
        cycles = resolve_service_cycles(small_request(spec="BASE"))
        base = run_service(
            config_for_spec("BASE"), "fifo", service_cycles=cycles, seed=7, **SMALL
        )
        # The monitor purges on every schedule/deschedule regardless of
        # variant (functional truth), but only FLUSH machines pay it.
        assert base.purge_count == 2 * SMALL["num_requests"]
        assert base.purge_stall_cycles == 512 * base.purge_count
        assert base.charged_purge_cycles == 0
        secured = execute_service_request(small_request(policy="fifo"))
        assert secured.charged_purge_cycles == 512 * secured.purge_count
        assert secured.purge_share > 0.0

    def test_policy_ordering_on_flush_machine(self):
        outcomes = {
            policy: execute_service_request(small_request(policy=policy))
            for policy in policy_names()
        }
        # fifo releases the core after every request: maximal switches,
        # maximal purge charge; affinity/batch amortise.
        assert outcomes["fifo"].switches == SMALL["num_requests"]
        for lazy in ("affinity", "batch"):
            assert outcomes[lazy].switches < outcomes["fifo"].switches
            assert (
                outcomes[lazy].charged_purge_cycles
                < outcomes["fifo"].charged_purge_cycles
            )
            assert outcomes[lazy].affinity_hits > 0
            # Mean latency orders robustly at this scale (tails can tip
            # either way: strict FCFS trades throughput for tail
            # fairness); the purge-cost ordering above is the claim.
            assert (
                outcomes[lazy].latency["mean"] < outcomes["fifo"].latency["mean"]
            )

    def test_flush_tail_penalty_over_base(self):
        base_cycles = resolve_service_cycles(small_request(spec="BASE"))
        base = run_service(
            config_for_spec("BASE"), "fifo", service_cycles=base_cycles, seed=7, **SMALL
        )
        # Same kernel costs, FLUSH-only machine: the tail penalty is
        # purely the purge charge at the enclave boundary.
        flush = run_service(
            config_for_spec("FLUSH"), "fifo", service_cycles=base_cycles, seed=7, **SMALL
        )
        assert flush.latency["p99"] > base.latency["p99"]
        assert flush.charged_purge_cycles > 0

    def test_churn_charges_flush_penalty_on_mi6(self):
        secured = execute_service_request(small_request(policy="batch", churn_every=5))
        assert secured.charged_flush_cycles > 0
        base_cycles = resolve_service_cycles(small_request(spec="BASE"))
        base = run_service(
            config_for_spec("BASE"),
            "batch",
            service_cycles=base_cycles,
            seed=7,
            churn_every=5,
            **SMALL,
        )
        assert base.charged_flush_cycles == 0

    def test_per_core_audit_consistent(self):
        outcome = execute_service_request(small_request(policy="affinity"))
        assert len(outcome.per_core) == SMALL["num_cores"]
        assert (
            sum(row["purge_count"] for row in outcome.per_core) == outcome.purge_count
        )
        assert (
            sum(row["charged_purge_cycles"] for row in outcome.per_core)
            == outcome.charged_purge_cycles
        )

    def test_missing_service_cycles_rejected(self):
        with pytest.raises(ConfigurationError, match="missing benchmarks"):
            run_service(
                config_for_spec("BASE"), "fifo", service_cycles={}, seed=7, **SMALL
            )

    def test_too_many_tenants_rejected(self):
        with pytest.raises(ConfigurationError, match="DRAM regions"):
            execute_service_request(small_request(num_tenants=63))


class TestEngineRequests:
    def test_cache_key_distinguishes_every_axis(self):
        base = small_request()
        keys = {base.cache_key()}
        for variation in (
            small_request(policy="batch"),
            small_request(spec="BASE"),
            small_request(seed=8),
            small_request(load=0.9),
            small_request(load_profile="bursty"),
            small_request(num_requests=61),
            small_request(churn_every=4),
        ):
            keys.add(variation.cache_key())
        assert len(keys) == 8

    def test_service_cycles_do_not_change_the_key(self):
        request = small_request()
        table = tuple(sorted(resolve_service_cycles(request).items()))
        from dataclasses import replace

        assert replace(request, service_cycles=table).cache_key() == request.cache_key()

    def test_payload_roundtrip(self):
        request = small_request(load_profile="diurnal", churn_every=3)
        table = tuple(sorted(resolve_service_cycles(request).items()))
        from dataclasses import replace

        shipped = replace(request, service_cycles=table)
        assert ServiceRunRequest.from_payload(shipped.to_payload()) == shipped

    def test_workload_requests_cover_tenant_benchmarks(self):
        request = small_request(num_tenants=13)
        benchmarks = [workload.benchmark for workload in request.workload_requests()]
        assert set(benchmarks) == set(tenant_benchmarks(13))
        assert len(benchmarks) == len(set(benchmarks))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ServiceSpec.create(policies=["round-robin"])
        with pytest.raises(ValueError, match="unknown load profile"):
            ServiceSpec.create(load_profile="weekend")
        with pytest.raises(ValueError, match="must not be empty"):
            ServiceSpec.create(policies=[])
        with pytest.raises(ValueError, match="positive"):
            ServiceSpec.create(loads=[0.0])
        with pytest.raises(ValueError, match="instructions must be positive"):
            ServiceSpec.create(instructions=0)
        spec = ServiceSpec.create(policies=["fifo"], loads=[0.5, 0.9])
        assert spec.size == 1 * 2 * 2 * 1
        assert len(spec.requests()) == spec.size


class TestSessionServe:
    @pytest.fixture()
    def request_fields(self):
        return dict(
            policies=["fifo", "affinity"],
            variants=["BASE", "F+P+M+A"],
            num_cores=2,
            num_tenants=4,
            requests=50,
            instructions=1_500,
        )

    def test_entries_keys_provenance_and_audit(self, request_fields):
        session = Session(ResultStore.in_memory())
        result = session.run(ServiceRequest(**request_fields))
        assert len(result.entries) == 4
        assert result.cold_count == 4
        entry = result.entry("fifo", "F+P+M+A", 0.7, session.settings.seed)
        assert entry.provenance.purge["purge_count"] > 0
        assert entry.provenance.purge["per_core"]
        assert entry.value.charged_purge_cycles == entry.provenance.purge[
            "charged_purge_cycles"
        ]
        assert [outcome.policy for outcome in result.service_outcomes] == [
            "fifo",
            "fifo",
            "affinity",
            "affinity",
        ]

    def test_warm_start_from_disk(self, request_fields, tmp_path):
        store_dir = tmp_path / "cache"
        cold_session = Session(ResultStore(store_dir))
        cold = cold_session.run(ServiceRequest(**request_fields))
        assert cold.cold_count == 4
        warm_session = Session(ResultStore(store_dir))
        warm = warm_session.run(ServiceRequest(**request_fields))
        assert warm.warm_count == 4
        # Nothing simulated on the warm pass: the workload cycle table
        # and the serving outcomes both come off disk.
        assert warm_session.store.misses == 0
        assert [entry.value.to_dict() for entry in warm] == [
            entry.value.to_dict() for entry in cold
        ]

    def test_mixed_warm_cold_keeps_all_entries_and_keys(self, request_fields):
        # Regression: the runner's provenance snapshot used to be
        # truncated to the cold (pending) keys, silently dropping
        # entries whenever a request was partially warm.
        session = Session(ResultStore.in_memory())
        session.run(ServiceRequest(**{**request_fields, "policies": ["fifo"]}))
        mixed = session.run(
            ServiceRequest(**{**request_fields, "policies": ["fifo", "affinity"]})
        )
        assert len(mixed.entries) == 4
        assert mixed.warm_count == 2 and mixed.cold_count == 2
        assert len({entry.provenance.cache_key for entry in mixed.entries}) == 4
        for entry in mixed.entries:
            assert entry.value.policy == entry.key[0]
            assert entry.value.variant == entry.key[1]

    def test_serial_equals_parallel(self, request_fields):
        serial = Session(ResultStore.in_memory(), jobs=1).run(
            ServiceRequest(**request_fields)
        )
        parallel = Session(ResultStore.in_memory(), jobs=2).run(
            ServiceRequest(**request_fields)
        )
        assert [entry.value.to_dict() for entry in serial] == [
            entry.value.to_dict() for entry in parallel
        ]

    def test_figures_rows_and_table_render(self, request_fields):
        session = Session(ResultStore.in_memory())
        result = session.run(ServiceRequest(**request_fields))
        rows = service_latency_rows(result.service_outcomes)
        assert len(rows) == 4
        table = format_service_table(SERVICE_TABLE_TITLE, rows)
        assert "policy" in table and "p99" in table and "purge%" in table
        fifo_row = rows[1]
        assert fifo_row["policy"] == "fifo" and fifo_row["variant"] == "F+P+M+A"
        assert fifo_row["purge_share"] > 0.0


class TestServeCli:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        output = capsys.readouterr().out
        return code, output

    def test_json_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        # conftest.py exports REPRO_CACHE=off, so the disk layer must be
        # requested explicitly to exercise the CLI's warm start.
        argv = (
            "serve",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--policy",
            "fifo",
            "affinity",
            "--variants",
            "BASE",
            "F+P+M+A",
            "--requests",
            "50",
            "--tenants",
            "4",
            "--num-cores",
            "2",
            "--instructions",
            "1500",
            "--json",
        )
        code, cold_output = self.run_cli(capsys, *argv)
        assert code == 0
        cold = json.loads(cold_output)
        assert cold["command"] == "serve"
        assert cold["cache"]["runs_simulated"] > 0
        code, warm_output = self.run_cli(capsys, *argv)
        assert code == 0
        warm = json.loads(warm_output)
        assert warm["cache"]["runs_simulated"] == 0
        assert warm["cache"]["warm_from_disk"] > 0
        assert [entry["outcome"] for entry in warm["entries"]] == [
            entry["outcome"] for entry in cold["entries"]
        ]
        by_variant = {
            (entry["policy"], entry["variant"]): entry["outcome"]
            for entry in cold["entries"]
        }
        assert by_variant[("fifo", "F+P+M+A")]["charged_purge_cycles"] > 0
        assert by_variant[("fifo", "BASE")]["charged_purge_cycles"] == 0

    def test_table_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, output = self.run_cli(
            capsys,
            "serve",
            "--policy",
            "batch",
            "--variants",
            "FLUSH",
            "--requests",
            "40",
            "--tenants",
            "3",
            "--num-cores",
            "2",
            "--instructions",
            "1500",
        )
        assert code == 0
        assert "Enclave serving" in output
        assert "batch" in output
        assert "warm from disk" in output

    def test_unknown_policy_and_profile_rejected(self, capsys):
        assert cli_main(["serve", "--policy", "lifo"]) == 2
        assert "unknown scheduling policy" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main(["serve", "--profile", "weekend"])
