"""Session/Request API: envelopes, provenance, placement, seed plumbing."""

import pytest

from repro.analysis.engine import ScenarioRequest as EngineScenarioRequest
from repro.analysis.harness import run_figure_series, runtime_overhead_metric
from repro.analysis.engine import EvaluationSettings
from repro.analysis.store import ResultStore
from repro.api import (
    ScenarioRequest,
    Session,
    SweepRequest,
    WorkloadRequest,
    default_session,
    set_default_session,
)
from repro.attacks.placement import Placement, default_placement
from repro.attacks.scenarios import build_scenario_machine
from repro.common.errors import ConfigurationError
from repro.core.config import MI6Config
from repro.core.simulator import Simulator
from repro.core.variants import Variant, config_for_variant
from repro.os_model.machine import Machine

SMALL = dict(instructions=2500)
BASE = config_for_variant(Variant.BASE)
MI6 = config_for_variant(Variant.F_P_M_A)


def session():
    return Session(ResultStore.in_memory(), settings=EvaluationSettings(instructions=2500))


class TestWorkloadRequests:
    def test_cold_then_warm_provenance(self):
        s = session()
        first = s.workload("ARB", "hmmer", **SMALL)
        assert first.provenance.origin == "cold"
        assert first.cold_count == 1 and first.warm_count == 0
        again = s.workload("ARB", "hmmer", **SMALL)
        assert again.provenance.origin == "warm"
        assert again.value is first.value  # in-memory layer returns the object
        assert again.provenance.cache_key == first.provenance.cache_key
        assert first.wall_time_seconds >= 0.0

    def test_enum_and_spec_share_cache_entries(self):
        s = session()
        cold = s.workload(Variant.F_P_M_A, "hmmer", **SMALL)
        warm = s.workload("flush+part+miss+arb", "hmmer", **SMALL)
        assert warm.provenance.origin == "warm"
        assert warm.provenance.cache_key == cold.provenance.cache_key

    def test_explicit_config_requests(self):
        s = session()
        config = MI6Config(trap_interval_instructions=7_777)
        result = s.run(WorkloadRequest(config=config, benchmark="hmmer", **SMALL))
        assert result.value.instructions == 2500
        # A config outside the evaluation policy gets its own cache key.
        policy = s.workload("BASE", "hmmer", **SMALL)
        assert result.provenance.cache_key != policy.provenance.cache_key

    def test_unsupported_request_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported request"):
            session().run("not a request")


class TestSweepRequests:
    def test_mixed_warm_cold_keeps_all_entries_and_keys(self):
        # Regression: the runner's provenance snapshot used to be the
        # deduplicated *pending* key list, so a partially-warm sweep
        # silently truncated the result envelope and attached cold
        # requests' cache keys to warm entries.
        s = session()
        s.sweep(variants=["BASE"], benchmarks=["hmmer"], **SMALL)
        mixed = s.sweep(
            variants=["BASE", "ARB"], benchmarks=["hmmer", "mcf"], **SMALL
        )
        assert len(mixed.entries) == 4
        assert mixed.warm_count == 1 and mixed.cold_count == 3
        assert len({entry.provenance.cache_key for entry in mixed.entries}) == 4
        warm_entry = mixed.entry("BASE", "hmmer", mixed.entries[0].key[2])
        assert warm_entry.provenance.origin == "warm"

    def test_envelope_and_accessors(self):
        s = session()
        result = s.sweep(
            variants=["BASE", "FLUSH+MISS"], benchmarks=["hmmer"], **SMALL
        )
        assert len(result) == 2
        assert [entry.key for entry in result] == [
            ("BASE", "hmmer", 2019),
            ("FLUSH+MISS", "hmmer", 2019),
        ]
        assert result.run_for("MISS+FLUSH", "hmmer").config_name == "FLUSH+MISS"
        assert result.overhead_percent("FLUSH+MISS", "hmmer") == pytest.approx(
            runtime_overhead_metric(
                result.run_for("BASE", "hmmer"), result.run_for("FLUSH+MISS", "hmmer")
            )
        )
        with pytest.raises(ValueError):
            result.value  # multi-entry results have no single value

    def test_sweep_reuses_workload_entries(self):
        s = session()
        s.workload("FLUSH+MISS", "hmmer", **SMALL)
        result = s.sweep(variants=["FLUSH+MISS"], benchmarks=["hmmer"], **SMALL)
        assert result.warm_count == 1

    def test_figure_series_accepts_combos(self):
        series = run_figure_series(
            "PART+ARB",
            runtime_overhead_metric,
            EvaluationSettings(instructions=2500),
            benchmarks=["libquantum"],
            store=ResultStore.in_memory(),
        )
        assert series["libquantum"] > 0
        assert set(series) == {"libquantum", "average"}


class TestScenarioRequests:
    def test_matrix_with_combos_and_num_cores(self):
        s = session()
        result = s.attack(
            scenarios=["branch_residue"],
            variants=["BASE", "FLUSH+PART"],
            num_cores=4,
        )
        assert [entry.key for entry in result] == [
            ("branch_residue", "BASE", 2019),
            ("branch_residue", "FLUSH+PART", 2019),
        ]
        open_outcome = result.outcome_for("branch_residue", "BASE")
        closed = result.outcome_for("branch_residue", "flush+part")
        assert open_outcome.leaked and not closed.leaked
        assert open_outcome.num_cores == 4
        warm = s.attack(
            scenarios=["branch_residue"],
            variants=["BASE", "FLUSH+PART"],
            num_cores=4,
        )
        assert warm.warm_count == 2

    def test_num_cores_changes_the_cache_key(self):
        pair = EngineScenarioRequest("prime_probe", BASE, seed=7, num_cores=2)
        quad = EngineScenarioRequest("prime_probe", BASE, seed=7, num_cores=4)
        assert pair.cache_key() != quad.cache_key()
        assert EngineScenarioRequest.from_payload(quad.to_payload()) == quad

    def test_property1_holds_on_larger_machines(self):
        s = session()
        result = s.attack(variants=[Variant.BASE, Variant.F_P_M_A], num_cores=4)
        for entry in result:
            scenario, variant, _seed = entry.key
            if variant == "BASE":
                assert entry.value.leaked, scenario
            else:
                assert not entry.value.leaked, scenario

    def test_rejects_single_core_matrices(self):
        with pytest.raises(ValueError, match="num_cores"):
            session().attack(num_cores=1)

    def test_oversized_machines_raise_a_clear_error(self):
        with pytest.raises(ConfigurationError, match="DRAM regions"):
            session().attack(scenarios=["prime_probe"], variants=["BASE"], num_cores=17)

    def test_contention_decodes_degenerate_messages_on_base(self):
        # Seed 55 historically drew an (almost) all-ones message whose
        # flood starved the receiver into empty slots; the channel must
        # still read as open on the insecure machine and closed on MI6.
        from repro.attacks.scenarios import run_contention

        assert run_contention(BASE, 55).leaked
        assert not run_contention(MI6, 55).leaked


class TestDefaultSession:
    def test_default_session_is_shared_and_replaceable(self):
        original = default_session()
        assert default_session() is original
        replacement = Session(ResultStore.in_memory())
        try:
            assert set_default_session(replacement) is replacement
            assert default_session() is replacement
        finally:
            set_default_session(original)


class TestDeprecatedServeAliases:
    """``Session.serve``/``serve_fleet`` warn and delegate to ``run``."""

    FIELDS = {
        "policies": ("fifo",),
        "variants": ("BASE",),
        "loads": (0.5,),
        "seeds": (1,),
        "num_cores": 2,
        "num_tenants": 2,
        "requests": 4,
        "instructions": 300,
    }

    def test_serve_warns_and_matches_run(self):
        from repro.api import ServiceRequest

        session = Session(ResultStore.in_memory())
        with pytest.warns(DeprecationWarning, match="Session.serve\\(\\) is deprecated"):
            aliased = session.serve(**self.FIELDS)
        direct = session.run(ServiceRequest(**self.FIELDS))
        assert [entry.key for entry in aliased] == [entry.key for entry in direct]
        assert [entry.value.to_dict() for entry in aliased] == [
            entry.value.to_dict() for entry in direct
        ]

    def test_serve_fleet_warns_and_matches_run(self):
        from repro.api import FleetRequest

        fields = {
            "variants": ("BASE",),
            "loads": (0.5,),
            "seeds": (1,),
            "num_shards": 2,
            "shard_cores": 2,
            "num_tenants": 2,
            "requests": 4,
            "instructions": 300,
        }
        session = Session(ResultStore.in_memory())
        with pytest.warns(
            DeprecationWarning, match="Session.serve_fleet\\(\\) is deprecated"
        ):
            aliased = session.serve_fleet(**fields)
        direct = session.run(FleetRequest(**fields))
        assert [entry.value.to_dict() for entry in aliased] == [
            entry.value.to_dict() for entry in direct
        ]


class TestPlacement:
    def test_default_placement_assigns_bystanders(self):
        placement = default_placement(4)
        assert placement.attacker_core == 0
        assert placement.victim_core == 1
        assert placement.bystander_cores == (2, 3)

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            Placement(num_cores=1)
        with pytest.raises(ConfigurationError, match="twice"):
            Placement(num_cores=4, attacker_core=0, victim_core=0)
        with pytest.raises(ConfigurationError, match="outside"):
            Placement(num_cores=2, attacker_core=0, victim_core=5)

    def test_bystander_regions_are_disjoint_from_principals(self):
        from repro.attacks.placement import ATTACKER_REGIONS, VICTIM_REGIONS

        placement = default_placement(6)
        reserved = ATTACKER_REGIONS | VICTIM_REGIONS
        regions = [
            placement.bystander_regions(core, 64) for core in placement.bystander_cores
        ]
        flattened = set().union(*regions)
        assert not flattened & reserved
        assert len(flattened) == len(regions)  # pairwise disjoint

    def test_scenario_machine_installs_every_domain(self):
        machine = build_scenario_machine(MI6, seed=5, num_cores=4)
        assert machine.num_cores == 4
        assert machine.seed == 5
        for core in machine.cores:
            assert core.region_bitvector.allowed_regions()


class TestSeedPlumbing:
    def test_machine_seed_default_and_override(self):
        assert Machine(BASE).seed == 7  # historical default preserved
        assert Machine(BASE, seed=123).seed == 123

    def test_machine_seed_reaches_the_per_core_rngs(self):
        # Same config, different machine seeds: the per-core hierarchy
        # replacement streams diverge — the point of the plumbing (they
        # were hardwired to the same constant for every scenario seed).
        def draws(seed):
            machine = Machine(BASE, seed=seed)
            rng = machine.cores[0].hierarchy.l1d.cache.policy._rng
            return tuple(rng.integer(0, 1_000_000) for _ in range(4))

        assert draws(1) != draws(2)

    def test_simulator_rejects_conflicting_seed_on_reused_machine(self):
        simulator = Simulator(BASE, seed=2019)
        simulator.run("hmmer", instructions=1000, fresh_machine=False)
        with pytest.raises(ValueError, match="conflicts with the reused machine"):
            simulator.run("hmmer", instructions=1000, seed=7, fresh_machine=False)
        # Matching and omitted seeds stay fine.
        simulator.run("hmmer", instructions=1000, seed=2019, fresh_machine=False)
        simulator.run("hmmer", instructions=1000, fresh_machine=False)
        # Fresh machines honour per-run overrides as before.
        run = simulator.run("hmmer", instructions=1000, seed=7)
        assert run.instructions == 1000
