"""Tests for the shared infrastructure (RNG, stats, errors)."""

import pytest

from repro.common import DeterministicRng, ProtectionFault, StatsRegistry
from repro.common.rng import derive_seed


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        first = [DeterministicRng(42).integer(0, 1000) for _ in range(5)]
        second = [DeterministicRng(42).integer(0, 1000) for _ in range(5)]
        assert first == second

    def test_fork_is_order_independent(self):
        parent = DeterministicRng(7)
        child_a_first = parent.fork("a").integer(0, 10**9)
        parent2 = DeterministicRng(7)
        parent2.fork("b")
        child_a_second = parent2.fork("a").integer(0, 10**9)
        assert child_a_first == child_a_second

    def test_forks_with_different_labels_differ(self):
        parent = DeterministicRng(7)
        assert parent.fork("x").integer(0, 10**9) != parent.fork("y").integer(0, 10**9)

    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert rng.chance(1.0) is True
        assert rng.chance(0.0) is False

    def test_geometric_mean_is_positive(self):
        rng = DeterministicRng(3)
        samples = [rng.geometric(6.0) for _ in range(200)]
        assert all(sample >= 1 for sample in samples)
        assert 2.0 < sum(samples) / len(samples) < 12.0

    def test_derive_seed_changes_with_components(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)


class TestStatsRegistry:
    def test_counter_creation_and_increment(self):
        stats = StatsRegistry()
        stats.counter("l1d.miss").increment()
        stats.counter("l1d.miss").increment(4)
        assert stats.value("l1d.miss") == 5
        assert stats.value("does.not.exist") == 0

    def test_histogram_statistics(self):
        stats = StatsRegistry()
        histogram = stats.histogram("latency")
        for value in (10, 20, 20, 30):
            histogram.record(value)
        assert histogram.mean == pytest.approx(20.0)
        assert histogram.maximum == 30
        assert histogram.minimum == 10
        assert histogram.total_samples == 4

    def test_reset_clears_everything(self):
        stats = StatsRegistry()
        stats.counter("a").increment(3)
        stats.histogram("h").record(5)
        stats.reset()
        assert stats.value("a") == 0
        assert stats.histogram("h").total_samples == 0

    def test_merged_with_sums_counters(self):
        first, second = StatsRegistry(), StatsRegistry()
        first.counter("x").increment(2)
        second.counter("x").increment(3)
        second.counter("y").increment(1)
        merged = first.merged_with(second)
        assert merged.value("x") == 5
        assert merged.value("y") == 1


class TestErrors:
    def test_protection_fault_carries_address_and_region(self):
        fault = ProtectionFault(0x1000, 3)
        assert fault.physical_address == 0x1000
        assert fault.region == 3
        assert "region" in str(fault)
