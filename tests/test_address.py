"""Tests for the address map, DRAM regions, and LLC index functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.mem.address import AddressMap, CacheGeometry, IndexFunction, LlcIndexer


class TestCacheGeometry:
    def test_figure4_llc_geometry(self):
        geometry = CacheGeometry(size_bytes=1024 * 1024, ways=16, line_bytes=64)
        assert geometry.num_sets == 1024
        assert geometry.index_bits == 10
        assert geometry.offset_bits == 6

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=1000, ways=8)


class TestAddressMap:
    def test_paper_default_regions(self):
        address_map = AddressMap()
        assert address_map.num_regions == 64
        assert address_map.region_bytes == 32 * 1024 * 1024
        assert address_map.region_of(0) == 0
        assert address_map.region_of(address_map.dram_bytes - 1) == 63

    def test_region_base_round_trips(self):
        address_map = AddressMap()
        for region in (0, 1, 17, 63):
            assert address_map.region_of(address_map.region_base(region)) == region

    def test_out_of_range_address_rejected(self):
        address_map = AddressMap()
        with pytest.raises(ConfigurationError):
            address_map.region_of(address_map.dram_bytes)


class TestLlcIndexer:
    def setup_method(self):
        self.address_map = AddressMap()
        self.geometry = CacheGeometry(size_bytes=1024 * 1024, ways=16, line_bytes=64)

    def test_baseline_index_uses_low_bits(self):
        indexer = LlcIndexer(self.geometry, self.address_map, IndexFunction.BASELINE)
        assert indexer.set_index(0) == 0
        assert indexer.set_index(64) == 1
        assert indexer.set_index(64 * 1024) == 0  # wraps after 1024 sets

    def test_partitioned_index_uses_region_bits(self):
        indexer = LlcIndexer(
            self.geometry, self.address_map, IndexFunction.SET_PARTITIONED, region_index_bits=2
        )
        region0_address = 0
        region1_address = self.address_map.region_base(1)
        low_bits = self.geometry.index_bits - 2
        assert indexer.set_index(region0_address) >> low_bits == 0
        assert indexer.set_index(region1_address) >> low_bits == 1

    def test_full_region_bits_give_disjoint_sets(self):
        indexer = LlcIndexer(
            self.geometry, self.address_map, IndexFunction.SET_PARTITIONED, region_index_bits=6
        )
        sets_region_2 = {
            indexer.set_index(self.address_map.region_base(2) + offset * 64) for offset in range(64)
        }
        sets_region_3 = {
            indexer.set_index(self.address_map.region_base(3) + offset * 64) for offset in range(64)
        }
        assert not (sets_region_2 & sets_region_3)

    @settings(max_examples=60, deadline=None)
    @given(address=st.integers(min_value=0, max_value=2 * 1024 * 1024 * 1024 - 1))
    def test_index_always_in_range(self, address):
        for function in (IndexFunction.BASELINE, IndexFunction.SET_PARTITIONED):
            indexer = LlcIndexer(self.geometry, self.address_map, function, region_index_bits=2)
            assert 0 <= indexer.set_index(address) < self.geometry.num_sets

    @settings(max_examples=60, deadline=None)
    @given(
        address_a=st.integers(min_value=0, max_value=2**31 - 1),
        address_b=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_partitioned_index_separates_regions(self, address_a, address_b):
        """Addresses in different DRAM regions never share a set when the
        full region ID is folded into the index."""
        indexer = LlcIndexer(
            self.geometry, self.address_map, IndexFunction.SET_PARTITIONED, region_index_bits=6
        )
        region_a = self.address_map.region_of(address_a)
        region_b = self.address_map.region_of(address_b)
        if region_a % 16 != region_b % 16:
            assert indexer.set_index(address_a) != indexer.set_index(address_b)
