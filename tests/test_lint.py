"""Tests for the ``repro.lint`` invariant linter.

Covers every rule family against good/bad fixture trees under
``tests/fixtures/lint/``, the suppression and baseline mechanisms, the
``repro lint`` CLI surface, the shipped-tree self-check, and the
mutation checks the issue calls for: deleting a field-consuming line
from ``service_cache_key`` or stripping the sanctioned-tap annotations
from ``mem/cache.py`` must turn the lint red.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    build_context,
    load_baseline,
    rule_names,
    run_rules,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint_fixture(case, rules=None, baseline=frozenset()):
    root = FIXTURES / case
    context = build_context([root], root=root)
    return run_rules(context, rules=rules, baseline=baseline)


def lint_source(tmp_path, relpath, text, rules=None):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    context = build_context([tmp_path], root=tmp_path)
    return run_rules(context, rules=rules)


def messages(report, rule=None):
    return [
        finding.message
        for finding in report.findings
        if rule is None or finding.rule == rule
    ]


# ----------------------------------------------------------------------
# Rule families against the fixture trees


class TestDeterminismRule:
    def test_bad_fixture_flags_every_violation_kind(self):
        report = lint_fixture("determinism_bad", rules=["determinism"])
        found = "\n".join(messages(report))
        assert "import of 'random'" in found
        assert "import of 'time'" in found
        assert "RNG internals" in found
        assert "unordered set" in found
        assert "id()" in found
        assert "environment read" in found

    def test_findings_carry_position_and_rule(self):
        report = lint_fixture("determinism_bad", rules=["determinism"])
        for finding in report.findings:
            assert finding.rule == "determinism"
            assert finding.path.endswith("repro/mem/model.py")
            assert finding.line >= 1

    def test_good_fixture_is_clean(self):
        report = lint_fixture("determinism_good", rules=["determinism"])
        assert report.findings == []


class TestFastpathParityRule:
    def test_bad_fixture_flags_structure_gaps(self):
        report = lint_fixture("parity_bad", rules=["fastpath-parity"])
        found = "\n".join(messages(report))
        assert "'_orphan_fast' has no reference twin" in found
        assert "'_drain_reference' is never dispatched to" in found
        assert "kernel.bonus" in found
        assert "never consults slow_path_enabled()" in found

    def test_good_fixture_is_clean(self):
        report = lint_fixture("parity_good", rules=["fastpath-parity"])
        assert report.findings == []


class TestCacheKeyRule:
    def test_bad_fixture_flags_digest_gaps(self):
        report = lint_fixture("cachekey_bad", rules=["cache-key"])
        found = "\n".join(messages(report))
        assert "parameter 'load_profile' never reaches the digest" in found
        assert "RunRequest.seed is not consumed by cache_key()" in found
        assert "SweepSpec.instructions is not consumed by requests()" in found
        assert "empty justification" in found
        assert "unknown owner 'GhostRequest'" in found

    def test_good_fixture_is_clean(self):
        report = lint_fixture("cachekey_good", rules=["cache-key"])
        assert report.findings == []


class TestRegistryHygieneRule:
    def test_bad_fixture_flags_conditional_lazy_foreign_and_shims(self):
        report = lint_fixture("registry_bad", rules=["registry-hygiene"])
        found = messages(report)
        assert len(found) == 5
        top_level = [m for m in found if "unconditional top-level" in m]
        foreign = [m for m in found if "outside its owning module" in m]
        shims = [m for m in found if "legacy variant shim" in m]
        assert len(top_level) == 2  # conditional + lazy, both in the owner
        assert len(foreign) == 1
        assert len(shims) == 2  # parse_variant + config_for_variant calls
        assert any("parse_spec" in m for m in shims)
        assert any("config_for_spec" in m for m in shims)

    def test_good_fixture_is_clean(self):
        report = lint_fixture("registry_good", rules=["registry-hygiene"])
        assert report.findings == []


class TestObsPurityRule:
    def test_obs_name_in_cache_key_function_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/analysis/keys.py",
            "from repro.obs.metrics import global_registry\n"
            "\n"
            "def service_cache_key(spec):\n"
            "    global_registry().counter('repro_keys_total').inc()\n"
            "    return str(spec)\n",
            rules=["obs-purity"],
        )
        found = messages(report, "obs-purity")
        assert len(found) == 1
        assert "obs name 'global_registry'" in found[0]
        assert "'service_cache_key'" in found[0]

    def test_wall_import_in_cycle_span_package_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/service/clock.py",
            "from repro.obs.trace import wall_time\n",
            rules=["obs-purity"],
        )
        found = messages(report, "obs-purity")
        assert len(found) == 1
        assert "wall-clock reader 'wall_time'" in found[0]

    def test_wall_attribute_read_in_cycle_span_package_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/fleet/clock.py",
            "def now(clock):\n"
            "    return clock.perf_counter()\n",
            rules=["obs-purity"],
        )
        found = messages(report, "obs-purity")
        assert len(found) == 1
        assert "wall-clock read ('perf_counter')" in found[0]

    def test_wall_read_in_sim_span_argument_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/mem/spans.py",
            "def record(tracer, wall_time):\n"
            "    tracer.sim_span('execute', 'core', 0, wall_time())\n",
            rules=["obs-purity"],
        )
        found = messages(report, "obs-purity")
        assert len(found) == 1
        assert "flows into a sim_span argument" in found[0]

    def test_cycle_denominated_spans_are_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/service/sim.py",
            "from repro.obs.trace import active_tracer\n"
            "\n"
            "def complete(start_cycle, end_cycle, tenant):\n"
            "    tracer = active_tracer()\n"
            "    if tracer is not None:\n"
            "        tracer.sim_span('execute', 'core', start_cycle, end_cycle,\n"
            "                        tenant=tenant)\n",
            rules=["obs-purity"],
        )
        assert messages(report, "obs-purity") == []

    def test_obs_package_itself_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "src/repro/obs/trace.py",
            "import time\n"
            "\n"
            "def wall_cache_key():\n"
            "    return time.perf_counter()\n",
            rules=["obs-purity"],
        )
        assert messages(report, "obs-purity") == []


# ----------------------------------------------------------------------
# Suppression mechanism

TAP_LINE = "tap = policy._rng._random\n"


class TestSuppressions:
    def test_inline_annotation_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n"
            "    tap = policy._rng._random  # repro: allow[determinism]: tap\n"
            "    return tap\n",
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_line_above_annotation_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n"
            "    # repro: allow[determinism]: sanctioned tap\n" + "    " + TAP_LINE,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_comment_block_annotation_covers_first_code_line(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n"
            "    # repro: allow[determinism]: a justification long enough\n"
            "    # to spill onto a second comment line before the code.\n"
            "    " + TAP_LINE,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n"
            "    tap = policy._rng._random  # repro: allow[cache-key]: wrong\n"
            "    return tap\n",
        )
        assert len(report.findings) == 1
        assert report.suppressed == 0

    def test_star_suppresses_any_rule(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n"
            "    tap = policy._rng._random  # repro: allow[*]: blanket\n"
            "    return tap\n",
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# Baseline mechanism


class TestBaseline:
    def test_roundtrip_accepts_existing_findings(self, tmp_path):
        report = lint_fixture("determinism_bad")
        assert report.findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.findings)
        accepted = load_baseline(baseline_file)
        assert len(accepted) == len({f.fingerprint() for f in report.findings})

        rerun = lint_fixture("determinism_bad", baseline=accepted)
        assert rerun.findings == []
        assert rerun.baselined == len(report.findings)

    def test_baseline_survives_line_shifts(self, tmp_path):
        source = (
            "def bind(policy):\n"
            "    tap = policy._rng._random\n"
            "    return tap\n"
        )
        first = lint_source(tmp_path, "repro/mem/tap.py", source)
        accepted = frozenset(f.fingerprint() for f in first.findings)
        shifted = "# a new leading comment shifts every line number\n\n" + source
        (tmp_path / "repro/mem/tap.py").write_text(shifted)
        context = build_context([tmp_path], root=tmp_path)
        rerun = run_rules(context, baseline=accepted)
        assert rerun.findings == []
        assert rerun.baselined == 1

    def test_new_finding_is_not_masked_by_baseline(self, tmp_path):
        first = lint_source(
            tmp_path,
            "repro/mem/tap.py",
            "def bind(policy):\n    tap = policy._rng._random\n    return tap\n",
        )
        accepted = frozenset(f.fingerprint() for f in first.findings)
        (tmp_path / "repro/mem/tap.py").write_text(
            "import random\n"
            "def bind(policy):\n    tap = policy._rng._random\n    return tap\n"
        )
        context = build_context([tmp_path], root=tmp_path)
        rerun = run_rules(context, baseline=accepted)
        assert len(rerun.findings) == 1
        assert "import of 'random'" in rerun.findings[0].message
        assert rerun.baselined == 1


# ----------------------------------------------------------------------
# CLI surface


class TestLintCli:
    def test_bad_fixture_exits_one(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", str(FIXTURES / "determinism_bad")]) == 1

    def test_good_fixture_exits_zero(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", str(FIXTURES / "determinism_good")]) == 0

    @pytest.mark.parametrize(
        "case",
        ["determinism_bad", "parity_bad", "cachekey_bad", "registry_bad"],
    )
    def test_every_bad_fixture_exits_one(self, monkeypatch, case):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", str(FIXTURES / case)]) == 1

    def test_rule_filter_limits_the_run(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        target = str(FIXTURES / "registry_bad")
        assert cli_main(["lint", "--rule", "determinism", target]) == 0
        assert cli_main(["lint", "--rule", "registry-hygiene", target]) == 1

    def test_unknown_rule_exits_two(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "--rule", "nonsense", "src"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules_names_all_four_families(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "--list-rules"]) == 0
        listed = capsys.readouterr().out
        for name in ("determinism", "fastpath-parity", "cache-key", "registry-hygiene"):
            assert name in listed

    def test_json_shape(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = cli_main(["lint", "--json", str(FIXTURES / "determinism_bad")])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["command"] == "lint"
        assert set(document["counts"]) == {
            "files",
            "findings",
            "gating",
            "suppressed",
            "baselined",
        }
        assert set(document["rules"]) == set(rule_names())
        assert document["findings"], "bad fixture must report findings"
        for finding in document["findings"]:
            assert set(finding) >= {"rule", "path", "line", "column", "message"}

    def test_write_baseline_then_rerun_is_clean(self, monkeypatch, tmp_path, capsys):
        monkeypatch.chdir(REPO_ROOT)
        target = str(FIXTURES / "determinism_bad")
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(["lint", "--write-baseline", baseline, target]) == 0
        capsys.readouterr()
        assert cli_main(["lint", "--baseline", baseline, target]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_module_entry_point_runs_lint(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(FIXTURES / "parity_bad")],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 1
        assert "fastpath-parity" in completed.stdout


# ----------------------------------------------------------------------
# Self-check and mutation checks on the shipped tree


def lint_mutated(tmp_path, relpath, text, rules=None):
    return lint_source(tmp_path, relpath, text, rules=rules)


class TestShippedTree:
    def test_shipped_tree_is_lint_clean(self):
        context = build_context([REPO_ROOT / "src"], root=REPO_ROOT)
        report = run_rules(context)
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings
        )
        # The sanctioned taps and configuration boundaries really are
        # annotated (the rule fires and is suppressed, not skipped).
        assert report.suppressed > 0

    def test_committed_baseline_is_empty(self):
        accepted = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert accepted == frozenset()

    @pytest.mark.parametrize(
        "field",
        [
            "policy",
            "seed",
            "load",
            "load_profile",
            "num_cores",
            "num_tenants",
            "num_requests",
            "instructions",
            "churn_every",
            "config",
        ],
    )
    def test_deleting_a_service_cache_key_line_fails_lint(self, tmp_path, field):
        source = (REPO_ROOT / "src/repro/core/serialization.py").read_text()
        needle = f'"{field}":'
        assert needle in source
        mutated = "\n".join(
            line for line in source.splitlines() if needle not in line
        )
        assert mutated != source
        report = lint_mutated(
            tmp_path, "repro/core/serialization.py", mutated, rules=["cache-key"]
        )
        assert any(
            "service_cache_key" in m and f"{field!r}" in m for m in messages(report)
        ), f"deleting the {field} line must be a cache-key finding"

    def test_stripping_cache_rng_annotations_fails_lint(self, tmp_path):
        source = (REPO_ROOT / "src/repro/mem/cache.py").read_text()
        assert "repro: allow[determinism]" in source
        mutated = source.replace("repro: allow[determinism]", "repro: struck[determinism]")
        report = lint_mutated(
            tmp_path, "repro/mem/cache.py", mutated, rules=["determinism"]
        )
        assert any("RNG internals" in m for m in messages(report))

    def test_stripping_generator_annotations_fails_lint(self, tmp_path):
        source = (REPO_ROOT / "src/repro/workloads/generator.py").read_text()
        assert "repro: allow[determinism]" in source
        mutated = source.replace("repro: allow[determinism]", "repro: struck[determinism]")
        report = lint_mutated(
            tmp_path, "repro/workloads/generator.py", mutated, rules=["determinism"]
        )
        assert any("RNG internals" in m for m in messages(report))
