"""Unit tests run hermetically: no persistent result-store reads/writes.

The harness's default store would otherwise read ``.repro_cache/`` from
the working directory.  Cache keys hash configuration and workload
parameters but not simulator *code*, so a stale on-disk entry written
before a timing-model change could make assertions pass or fail against
numbers the current code no longer produces — and every pytest run would
pollute the checkout.  The disk layer has its own coverage against
temporary directories in ``tests/test_engine.py``.
"""

import os

os.environ["REPRO_CACHE"] = "off"
