"""Composable mitigation registry: legacy equivalence and the 2^5 lattice.

The hard requirement this file pins down: for each of the paper's seven
variants, the *composed* mitigation path produces a machine configuration
that is field-for-field identical to the legacy enum path — and therefore
hashes to the identical content-addressed cache key, so every previously
stored result stays reachable.
"""

import pytest

from repro.analysis.engine import (
    EvaluationSettings,
    instructions_for_variant,
    request_for,
)
from repro.core.config import MI6Config
from repro.core.mitigations import (
    MitigationSet,
    as_spec,
    config_for_spec,
    known_compositions,
    known_mitigations,
    parse_spec,
    register_composition,
    register_mitigation,
    spec_name,
)
from repro.core.serialization import config_digest
from repro.core.variants import (
    Variant,
    all_variants,
    config_for_variant,
    parse_variant,
    variant_description,
)

SMALL = EvaluationSettings(instructions=2500)

#: The composed spelling of each legacy enum variant.
LEGACY_SPECS = {
    Variant.BASE: "BASE",
    Variant.FLUSH: "FLUSH",
    Variant.PART: "PART",
    Variant.MISS: "MISS",
    Variant.ARB: "ARB",
    Variant.NONSPEC: "NONSPEC",
    Variant.F_P_M_A: "FLUSH+PART+MISS+ARB",
}


class TestLegacyEquivalence:
    @pytest.mark.parametrize("variant", all_variants())
    def test_composed_config_is_field_identical(self, variant):
        composed = config_for_spec(LEGACY_SPECS[variant])
        legacy = config_for_variant(variant)
        assert composed == legacy  # dataclass equality covers every field

    @pytest.mark.parametrize("variant", all_variants())
    def test_composed_config_digest_matches(self, variant):
        assert config_digest(config_for_spec(LEGACY_SPECS[variant])) == config_digest(
            config_for_variant(variant)
        )

    @pytest.mark.parametrize("variant", all_variants())
    def test_run_cache_keys_match(self, variant):
        """Enum and composed requests address the same store entries."""
        legacy = request_for(variant, "hmmer", SMALL)
        composed = request_for(LEGACY_SPECS[variant], "hmmer", SMALL)
        assert composed.cache_key() == legacy.cache_key()

    def test_f_p_m_a_canonical_name_is_the_paper_spelling(self):
        assert parse_spec("FLUSH+PART+MISS+ARB").name == "F+P+M+A"
        assert config_for_spec("FLUSH+PART+MISS+ARB").name == "F+P+M+A"

    def test_nonspec_truncation_follows_membership(self):
        assert instructions_for_variant(Variant.NONSPEC, 10_000) == 5_000
        assert instructions_for_variant("NONSPEC", 10_000) == 5_000
        assert instructions_for_variant("FLUSH+NONSPEC", 10_000) == 5_000
        assert instructions_for_variant(Variant.F_P_M_A, 10_000) == 10_000
        assert instructions_for_variant("FLUSH+MISS", 10_000) == 10_000


class TestComposition:
    def test_order_insensitive_sets_and_names(self):
        assert parse_spec("FLUSH+MISS") == parse_spec("MISS+FLUSH")
        assert parse_spec("MISS+FLUSH").name == "FLUSH+MISS"
        assert config_for_spec("FLUSH+MISS") == config_for_spec("MISS+FLUSH")
        assert config_digest(config_for_spec("FLUSH+MISS")) == config_digest(
            config_for_spec("MISS+FLUSH")
        )

    def test_duplicates_collapse(self):
        assert parse_spec("FLUSH+FLUSH+MISS") == parse_spec("FLUSH+MISS")

    def test_aliases_and_case(self):
        assert parse_spec("f+m") == parse_spec("FLUSH+MISS")
        assert parse_spec("F+P+M+A") == parse_spec("flush+part+miss+arb")
        assert parse_spec("f_p_m_a").name == "F+P+M+A"
        assert parse_spec("base") == MitigationSet()

    def test_full_lattice_is_expressible_and_distinct(self):
        names = [m.name for m in known_mitigations()]
        digests = set()
        for mask in range(2 ** len(names)):
            members = [name for bit, name in enumerate(names) if mask & (1 << bit)]
            spec = MitigationSet.of(*members)
            digests.add(config_digest(spec.apply()))
        assert len(digests) == 2 ** len(names)  # 32 distinct configurations

    def test_composed_switches_are_the_union(self):
        config = config_for_spec("PART+ARB+NONSPEC")
        assert config.set_partition_llc
        assert config.llc_arbiter
        assert config.nonspec_memory
        assert not config.flush_on_context_switch
        assert not config.partition_mshrs

    def test_apply_respects_base_config(self):
        base = MI6Config(trap_interval_instructions=9_999)
        config = config_for_spec("FLUSH+MISS", base)
        assert config.trap_interval_instructions == 9_999
        assert config.flush_on_context_switch and config.partition_mshrs


class TestParsing:
    def test_parse_variant_returns_enum_for_the_paper_seven(self):
        assert parse_variant("F+P+M+A") is Variant.F_P_M_A
        assert parse_variant("flush+part+miss+arb") is Variant.F_P_M_A
        assert parse_variant("base") is Variant.BASE
        assert parse_variant("NONSPEC") is Variant.NONSPEC

    def test_parse_variant_returns_sets_for_new_combos(self):
        combo = parse_variant("FLUSH+MISS")
        assert isinstance(combo, MitigationSet)
        assert combo.name == "FLUSH+MISS"

    def test_unknown_mitigation_error_names_the_valid_vocabulary(self):
        with pytest.raises(ValueError) as excinfo:
            parse_spec("FLUSH+TURBO")
        message = str(excinfo.value)
        assert "unknown mitigation 'TURBO'" in message
        assert "FLUSH+TURBO" in message  # the full offending spec
        assert "FLUSH, PART, MISS, ARB, NONSPEC" in message
        assert "BASE" in message and "F+P+M+A" in message
        with pytest.raises(ValueError):
            parse_variant("TURBO")

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("")
        with pytest.raises(ValueError):
            parse_spec("FLUSH++MISS")
        with pytest.raises(ValueError):
            parse_spec("+FLUSH")

    def test_as_spec_coerces_every_variant_like(self):
        assert as_spec(Variant.F_P_M_A).name == "F+P+M+A"
        assert as_spec("miss+flush").name == "FLUSH+MISS"
        assert as_spec(MitigationSet.of("ARB")).name == "ARB"
        with pytest.raises(TypeError):
            as_spec(42)
        assert spec_name(Variant.BASE) == "BASE"

    def test_membership_and_iteration(self):
        spec = parse_spec("FLUSH+MISS")
        assert "FLUSH" in spec and "miss" in spec and "ARB" not in spec
        assert list(spec) == ["FLUSH", "MISS"]
        assert len(spec) == 2


class TestRegistry:
    def test_registrations_are_guarded(self):
        with pytest.raises(ValueError):
            register_mitigation("FLUSH", "duplicate", lambda config: config)
        with pytest.raises(ValueError):
            register_mitigation("NO+PLUS", "bad name", lambda config: config)
        with pytest.raises(ValueError):
            register_composition("ARB", ["FLUSH"])  # collides with a mitigation
        with pytest.raises(ValueError):
            register_composition("BASE", ["FLUSH"])  # silent redefinition

    def test_raw_constructor_canonicalises(self):
        # Bypassing parse_spec must not bypass the cache-key invariant.
        raw = MitigationSet(("MISS", "FLUSH"))
        assert raw == parse_spec("FLUSH+MISS")
        assert raw.name == "FLUSH+MISS"
        assert config_digest(raw.apply()) == config_digest(
            parse_spec("MISS+FLUSH").apply()
        )
        with pytest.raises(ValueError):
            MitigationSet(("TURBO",))

    def test_known_compositions_pin_the_paper_names(self):
        compositions = known_compositions()
        assert compositions["BASE"] == ()
        assert compositions["F+P+M+A"] == ("FLUSH", "PART", "MISS", "ARB")

    def test_descriptions_cover_combos(self):
        assert "flush" in variant_description(Variant.FLUSH)
        text = variant_description("FLUSH+MISS")
        assert "flush" in text and "MSHR" in text
