"""Tests for the security monitor, enclave lifecycle, and the untrusted OS."""

import pytest

from repro.common.errors import SecurityMonitorError
from repro.core.variants import Variant, config_for_variant
from repro.monitor.enclave import EnclaveState
from repro.monitor.measurement import attest, measure_pages
from repro.monitor.security_monitor import SecurityMonitor
from repro.os_model.kernel import MaliciousOS, UntrustedOS
from repro.os_model.machine import Machine


@pytest.fixture()
def platform():
    machine = Machine(config_for_variant(Variant.F_P_M_A), num_cores=2)
    monitor = SecurityMonitor(machine)
    operating_system = UntrustedOS(machine, monitor)
    return machine, monitor, operating_system


class TestEnclaveLifecycle:
    def test_full_lifecycle(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code", 0x2000: b"data"}, core_id=1)
        assert enclave.state is EnclaveState.RUNNING
        assert enclave.measurement is not None
        assert machine.core(1).current_domain.domain_id == enclave.enclave_id
        monitor.deschedule_enclave(enclave, 1)
        assert enclave.state is EnclaveState.SUSPENDED
        monitor.destroy_enclave(enclave)
        assert enclave.state is EnclaveState.DESTROYED
        assert enclave.enclave_id not in monitor.live_domains()

    def test_scheduling_purges_the_core(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        assert machine.core(1).purge_count >= 1
        result = monitor.deschedule_enclave(enclave, 1)
        assert result.purge_stall_cycles == 512
        assert machine.core(1).purge_count >= 2

    def test_enclave_core_gets_enclave_bitvector(self, platform):
        machine, _monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        allowed = machine.core(1).region_bitvector.allowed_regions()
        assert allowed == {2, 3}
        assert not allowed & operating_system.domain.regions

    def test_measurement_is_deterministic_and_content_sensitive(self):
        pages = {0x1000 // 4096: b"alpha", 0x2000 // 4096: b"beta"}
        assert measure_pages(pages) == measure_pages(dict(reversed(list(pages.items()))))
        assert measure_pages(pages) != measure_pages({0x1000 // 4096: b"alphb"})

    def test_attestation_verifies_against_trusted_platform(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        attestation = monitor.attest_enclave(enclave)
        assert attestation.verify(enclave.measurement, {"mi6-platform"})
        assert not attestation.verify(enclave.measurement, {"other-platform"})
        assert not attest("mi6-platform", "forged").verify(enclave.measurement, {"mi6-platform"})

    def test_tlb_shootdown_on_domain_changes(self, platform):
        _machine, monitor, operating_system = platform
        before = monitor.tlb_shootdowns
        enclave = operating_system.launch_enclave({4, 5}, {0x1000: b"x"}, core_id=1)
        monitor.destroy_enclave(enclave)
        assert monitor.tlb_shootdowns >= before + 2


class TestCommunicationPrimitives:
    def test_mailbox_send_receive(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        monitor.mailbox_send(enclave, operating_system.os_domain_id(), b"hello world")
        message = monitor.mailbox_receive(operating_system.os_domain_id())
        assert message.payload == b"hello world"
        assert message.sender_measurement == enclave.measurement

    def test_mailbox_rejects_oversized_messages(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        with pytest.raises(SecurityMonitorError):
            monitor.mailbox_send(enclave, operating_system.os_domain_id(), b"x" * 65)

    def test_memcopy_roundtrip_through_monitor(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        monitor.os_write_buffer(enclave.enclave_id, b"request")
        assert monitor.enclave_read_os_buffer(enclave) == b"request"
        monitor.enclave_write_os_buffer(enclave, b"response")
        assert monitor.os_read_buffer(enclave.enclave_id) == b"response"


class TestMaliciousOs:
    @pytest.fixture()
    def hostile_platform(self):
        machine = Machine(config_for_variant(Variant.F_P_M_A), num_cores=3)
        monitor = SecurityMonitor(machine)
        operating_system = MaliciousOS(machine, monitor)
        victim = operating_system.launch_enclave({2, 3}, {0x1000: b"secret"}, core_id=1)
        return machine, monitor, operating_system, victim

    def test_cannot_grab_enclave_regions(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_grab_enclave_regions(victim) is not None

    def test_cannot_grab_monitor_par(self, hostile_platform):
        _machine, _monitor, operating_system, _victim = hostile_platform
        assert operating_system.try_grab_monitor_region() is not None

    def test_cannot_schedule_over_running_enclave(self, hostile_platform):
        _machine, monitor, operating_system, victim = hostile_platform
        other = monitor.create_enclave({6, 7})
        monitor.finalize_measurement(other)
        assert operating_system.try_schedule_over_enclave(victim, other) is not None

    def test_cannot_inject_pages_after_measurement(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_load_page_after_measurement(victim) is not None

    def test_cannot_overflow_memcopy_buffer(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_oversized_memcopy(victim) is not None

    def test_cannot_probe_enclave_memory_from_os_core(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.probe_enclave_memory(victim, core_id=0) is False

    def test_overlapping_enclaves_rejected(self, hostile_platform):
        _machine, monitor, _operating_system, _victim = hostile_platform
        first = monitor.create_enclave({10, 11})
        assert first is not None
        with pytest.raises(SecurityMonitorError):
            monitor.create_enclave({11, 12})
