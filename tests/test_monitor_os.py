"""Tests for the security monitor, enclave lifecycle, and the untrusted OS."""

import pytest

from repro.common.errors import SecurityMonitorError
from repro.core.mitigations import config_for_spec
from repro.core.variants import Variant, config_for_variant
from repro.monitor.enclave import EnclaveState
from repro.monitor.measurement import attest, measure_pages
from repro.monitor.security_monitor import SecurityMonitor
from repro.os_model.kernel import MaliciousOS, UntrustedOS
from repro.os_model.machine import Machine


@pytest.fixture()
def platform():
    machine = Machine(config_for_variant(Variant.F_P_M_A), num_cores=2)
    monitor = SecurityMonitor(machine)
    operating_system = UntrustedOS(machine, monitor)
    return machine, monitor, operating_system


class TestEnclaveLifecycle:
    def test_full_lifecycle(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code", 0x2000: b"data"}, core_id=1)
        assert enclave.state is EnclaveState.RUNNING
        assert enclave.measurement is not None
        assert machine.core(1).current_domain.domain_id == enclave.enclave_id
        monitor.deschedule_enclave(enclave, 1)
        assert enclave.state is EnclaveState.SUSPENDED
        monitor.destroy_enclave(enclave)
        assert enclave.state is EnclaveState.DESTROYED
        assert enclave.enclave_id not in monitor.live_domains()

    def test_scheduling_purges_the_core(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        assert machine.core(1).purge_count >= 1
        result = monitor.deschedule_enclave(enclave, 1)
        assert result.purge_stall_cycles == 512
        assert machine.core(1).purge_count >= 2

    def test_enclave_core_gets_enclave_bitvector(self, platform):
        machine, _monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        allowed = machine.core(1).region_bitvector.allowed_regions()
        assert allowed == {2, 3}
        assert not allowed & operating_system.domain.regions

    def test_measurement_is_deterministic_and_content_sensitive(self):
        pages = {0x1000 // 4096: b"alpha", 0x2000 // 4096: b"beta"}
        assert measure_pages(pages) == measure_pages(dict(reversed(list(pages.items()))))
        assert measure_pages(pages) != measure_pages({0x1000 // 4096: b"alphb"})

    def test_attestation_verifies_against_trusted_platform(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        attestation = monitor.attest_enclave(enclave)
        assert attestation.verify(enclave.measurement, {"mi6-platform"})
        assert not attestation.verify(enclave.measurement, {"other-platform"})
        assert not attest("mi6-platform", "forged").verify(enclave.measurement, {"mi6-platform"})

    def test_tlb_shootdown_on_domain_changes(self, platform):
        _machine, monitor, operating_system = platform
        before = monitor.tlb_shootdowns
        enclave = operating_system.launch_enclave({4, 5}, {0x1000: b"x"}, core_id=1)
        monitor.destroy_enclave(enclave)
        assert monitor.tlb_shootdowns >= before + 2


class TestCommunicationPrimitives:
    def test_mailbox_send_receive(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        monitor.mailbox_send(enclave, operating_system.os_domain_id(), b"hello world")
        message = monitor.mailbox_receive(operating_system.os_domain_id())
        assert message.payload == b"hello world"
        assert message.sender_measurement == enclave.measurement

    def test_mailbox_rejects_oversized_messages(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        with pytest.raises(SecurityMonitorError):
            monitor.mailbox_send(enclave, operating_system.os_domain_id(), b"x" * 65)

    def test_memcopy_roundtrip_through_monitor(self, platform):
        _machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        monitor.os_write_buffer(enclave.enclave_id, b"request")
        assert monitor.enclave_read_os_buffer(enclave) == b"request"
        monitor.enclave_write_os_buffer(enclave, b"response")
        assert monitor.os_read_buffer(enclave.enclave_id) == b"response"


class TestMaliciousOs:
    @pytest.fixture()
    def hostile_platform(self):
        machine = Machine(config_for_variant(Variant.F_P_M_A), num_cores=3)
        monitor = SecurityMonitor(machine)
        operating_system = MaliciousOS(machine, monitor)
        victim = operating_system.launch_enclave({2, 3}, {0x1000: b"secret"}, core_id=1)
        return machine, monitor, operating_system, victim

    def test_cannot_grab_enclave_regions(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_grab_enclave_regions(victim) is not None

    def test_cannot_grab_monitor_par(self, hostile_platform):
        _machine, _monitor, operating_system, _victim = hostile_platform
        assert operating_system.try_grab_monitor_region() is not None

    def test_cannot_schedule_over_running_enclave(self, hostile_platform):
        _machine, monitor, operating_system, victim = hostile_platform
        other = monitor.create_enclave({6, 7})
        monitor.finalize_measurement(other)
        assert operating_system.try_schedule_over_enclave(victim, other) is not None

    def test_cannot_inject_pages_after_measurement(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_load_page_after_measurement(victim) is not None

    def test_cannot_overflow_memcopy_buffer(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.try_oversized_memcopy(victim) is not None

    def test_cannot_probe_enclave_memory_from_os_core(self, hostile_platform):
        _machine, _monitor, operating_system, victim = hostile_platform
        assert operating_system.probe_enclave_memory(victim, core_id=0) is False

    def test_overlapping_enclaves_rejected(self, hostile_platform):
        _machine, monitor, _operating_system, _victim = hostile_platform
        first = monitor.create_enclave({10, 11})
        assert first is not None
        with pytest.raises(SecurityMonitorError):
            monitor.create_enclave({11, 12})


def _hostile_platform_for(spec: str):
    machine = Machine(config_for_spec(spec), num_cores=2)
    monitor = SecurityMonitor(machine)
    operating_system = MaliciousOS(machine, monitor)
    victim = operating_system.launch_enclave({2, 3}, {0x1000: b"secret"}, core_id=1)
    return machine, operating_system, victim


class TestProbeAcrossMitigationLattice:
    """probe_enclave_memory across the 2^5 mitigation lattice.

    The DRAM-region protection checker ships on every MI6 build (any
    mitigation switch) and is absent on the insecure baseline, so the
    probe leaks exactly on BASE-like machines regardless of which other
    knobs are composed.
    """

    @pytest.mark.parametrize("spec", ["BASE"])
    def test_base_machine_leaks_enclave_memory(self, spec):
        _machine, operating_system, victim = _hostile_platform_for(spec)
        assert operating_system.probe_enclave_memory(victim, core_id=0) is True

    @pytest.mark.parametrize(
        "spec",
        ["F+P+M+A", "FLUSH", "PART", "MISS", "ARB", "NONSPEC", "FLUSH+MISS", "PART+ARB+NONSPEC"],
    )
    def test_any_mi6_build_blocks_enclave_memory(self, spec):
        _machine, operating_system, victim = _hostile_platform_for(spec)
        assert operating_system.probe_enclave_memory(victim, core_id=0) is False

    def test_protection_hardware_flag_matches_lattice(self):
        assert config_for_spec("BASE").has_protection_hardware is False
        assert config_for_spec("ARB").has_protection_hardware is True
        assert config_for_spec("F+P+M+A").has_protection_hardware is True


class TestPurgeAccounting:
    """Per-core purge counts and stall cycles across schedule cycles."""

    def test_repeated_schedule_deschedule_accumulates(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        core = machine.core(1)
        count_after_launch = core.purge_count
        stall_after_launch = core.purge_stall_cycles
        assert count_after_launch == 1
        assert stall_after_launch == 512
        cycles = 5
        for _ in range(cycles):
            result = monitor.deschedule_enclave(enclave, 1)
            assert result.core_id == 1
            assert result.purge_stall_cycles == 512
            result = monitor.schedule_enclave(enclave, 1)
            assert result.core_id == 1
            assert result.purge_count == core.purge_count
        assert core.purge_count == count_after_launch + 2 * cycles
        assert core.purge_stall_cycles == stall_after_launch + 2 * cycles * 512

    def test_machine_purge_audit_matches_cores(self, platform):
        machine, monitor, operating_system = platform
        enclave = operating_system.launch_enclave({2, 3}, {0x1000: b"code"}, core_id=1)
        monitor.deschedule_enclave(enclave, 1)
        audit = machine.purge_audit()
        assert set(audit) == {0, 1}
        assert audit[1] == {"purge_count": 2, "purge_stall_cycles": 1024}
        assert audit[0] == {"purge_count": 0, "purge_stall_cycles": 0}
