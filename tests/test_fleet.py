"""Tests for the fleet-scale sharded serving subsystem (repro/fleet)."""

import json
from dataclasses import replace

import pytest

from repro.analysis.engine import (
    FleetRunRequest,
    FleetShardRequest,
    FleetSpec,
    evaluation_config,
    execute_fleet_request,
    resolve_fleet_cycles,
)
from repro.analysis.figures import (
    FLEET_TABLE_TITLE,
    fleet_goodput_rows,
    fleet_saturation_points,
)
from repro.analysis.report import format_fleet_table
from repro.analysis.store import ResultStore
from repro.api import FleetRequest, Session
from repro.cli import main as cli_main
from repro.common.errors import ConfigurationError
from repro.core.mitigations import config_for_spec
from repro.fleet import (
    FleetOutcome,
    ShardOutcome,
    TenantLoad,
    admission_names,
    assign_tenants,
    client_model_names,
    register_admission_policy,
    register_client_model,
    register_router,
    router_names,
    run_fleet_shard,
)
from repro.fleet.admission import (
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    AdmissionContext,
    admit,
)
from repro.fleet.clients import (
    ClientModel,
    client_model,
    closed_loop_population,
    think_gap,
)
from repro.common.rng import DeterministicRng
from repro.service.simulation import tenant_benchmarks

#: Small fleet shared by most tests: four tenants over two 2-core
#: shards keeps routing and admission busy while the suite stays fast.
SMALL = dict(
    num_shards=2,
    shard_cores=2,
    num_tenants=4,
    num_requests=60,
    instructions=1_500,
)


def synthetic_cycles(num_tenants=4, base=2_000, step=250):
    """A deterministic benchmark -> cycles table (no kernel runs)."""
    benchmarks = tenant_benchmarks(num_tenants)
    ordered = []
    for benchmark in benchmarks:
        if benchmark not in ordered:
            ordered.append(benchmark)
    return {name: base + step * index for index, name in enumerate(ordered)}


def small_request(spec="F+P+M+A", seed=7, policy="affinity", **overrides):
    fields = dict(SMALL)
    fields.update(overrides)
    return FleetRunRequest(
        policy=policy,
        config=evaluation_config(spec, fields["instructions"]),
        seed=seed,
        **fields,
    )


def priced(request):
    """The request with its cycle table attached from synthetic costs."""
    table = synthetic_cycles(request.num_tenants)
    return replace(request, service_cycles=tuple(sorted(table.items())))


class TestRouting:
    def test_registry_ships_three_routers(self):
        assert router_names() == [
            "consistent_hash",
            "least_loaded",
            "purge_cost_aware",
        ]

    def test_unknown_router_and_bad_shard_count_rejected(self):
        loads = [TenantLoad(0, "astar", 100, 0)]
        with pytest.raises(ConfigurationError, match="unknown routing policy"):
            assign_tenants("random", loads, 2)
        with pytest.raises(ConfigurationError, match="num_shards must be positive"):
            assign_tenants("consistent_hash", loads, 0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_router("least_loaded", lambda tenants, shards: (), "again")

    def test_consistent_hash_is_stable_and_ignores_demand(self):
        light = [TenantLoad(t, "astar", 100, 0) for t in range(8)]
        heavy = [TenantLoad(t, "astar", 10_000, 500) for t in range(8)]
        placement = assign_tenants("consistent_hash", light, 4)
        # Placement hashes only (tenant id, shard count): repeated calls
        # and different demand tables give the identical assignment.
        assert placement == assign_tenants("consistent_hash", light, 4)
        assert placement == assign_tenants("consistent_hash", heavy, 4)
        assert all(0 <= shard < 4 for shard in placement)

    def test_consistent_hash_resize_moves_few_tenants(self):
        loads = [TenantLoad(t, "astar", 100, 0) for t in range(32)]
        before = assign_tenants("consistent_hash", loads, 8)
        after = assign_tenants("consistent_hash", loads, 9)
        moved = sum(1 for a, b in zip(before, after) if a != b)
        # The ring property: growing the fleet remaps only the arc the
        # new shard claims, not a full reshuffle (expect ~1/9 moved).
        assert moved < len(loads) // 2

    def test_least_loaded_balances_demand(self):
        loads = [
            TenantLoad(0, "a", 400, 0),
            TenantLoad(1, "b", 300, 0),
            TenantLoad(2, "c", 200, 0),
            TenantLoad(3, "d", 100, 0),
        ]
        placement = assign_tenants("least_loaded", loads, 2)
        totals = [0, 0]
        for load, shard in zip(loads, placement):
            totals[shard] += load.demand_cycles
        # LPT on these weights packs perfectly: 400+100 vs 300+200.
        assert totals == [500, 500]
        # With at least as many tenants as shards, no shard is empty.
        assert set(placement) == {0, 1}

    def test_purge_cost_aware_spreads_boundary_cost(self):
        loads = [
            TenantLoad(0, "a", 400, 0),
            TenantLoad(1, "b", 300, 0),
            TenantLoad(2, "c", 200, 0),
            TenantLoad(3, "d", 100, 600),
        ]
        demand_only = assign_tenants("least_loaded", loads, 2)
        cost_aware = assign_tenants("purge_cost_aware", loads, 2)
        assert demand_only != cost_aware

        def spread(placement):
            totals = [0, 0]
            for load, shard in zip(loads, placement):
                totals[shard] += load.demand_cycles + load.boundary_cycles
            return abs(totals[0] - totals[1])

        assert spread(cost_aware) < spread(demand_only)

    def test_purge_cost_aware_reduces_to_least_loaded_without_boundary(self):
        loads = [TenantLoad(t, "a", 100 * (t + 1), 0) for t in range(6)]
        assert assign_tenants("purge_cost_aware", loads, 3) == assign_tenants(
            "least_loaded", loads, 3
        )


class TestAdmission:
    def context(self, **overrides):
        fields = dict(
            now=0,
            queue_length=0,
            queue_depth=4,
            service_cycles=1_000,
            estimated_wait_cycles=0,
            slo_cycles=8_000,
        )
        fields.update(overrides)
        return AdmissionContext(**fields)

    def test_registry_ships_two_policies(self):
        assert admission_names() == ["drop_on_full", "deadline"]

    def test_drop_on_full(self):
        assert admit("drop_on_full", self.context()) is None
        assert admit("drop_on_full", self.context(queue_length=3)) is None
        assert (
            admit("drop_on_full", self.context(queue_length=4)) == REJECT_QUEUE_FULL
        )

    def test_deadline_rejects_hopeless_requests(self):
        assert admit("deadline", self.context()) is None
        # queue_full outranks the SLO check (matches drop_on_full).
        assert (
            admit("deadline", self.context(queue_length=4, estimated_wait_cycles=10**6))
            == REJECT_QUEUE_FULL
        )
        assert (
            admit("deadline", self.context(estimated_wait_cycles=7_500))
            == REJECT_DEADLINE
        )
        # Exactly meeting the SLO is admitted (strict inequality).
        assert admit("deadline", self.context(estimated_wait_cycles=7_000)) is None

    def test_unknown_and_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown admission policy"):
            admit("lottery", self.context())
        with pytest.raises(ConfigurationError, match="already registered"):
            register_admission_policy("deadline", lambda context: None, "again")


class TestClients:
    def test_registry_ships_two_models(self):
        assert client_model_names() == ["open_loop", "closed_loop"]
        assert client_model("open_loop").closed_loop is False
        assert client_model("closed_loop").closed_loop is True

    def test_unknown_and_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown client model"):
            client_model("half_open")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_client_model("open_loop", ClientModel(closed_loop=False), "again")

    def test_population_tracks_the_load_knob(self):
        # N = load x cores x (1 + think_factor), floored at one client.
        assert closed_loop_population(1.0, 4, 2.0) == 12
        assert closed_loop_population(0.5, 2, 2.0) == 3
        assert closed_loop_population(0.01, 1, 0.0) == 1
        assert closed_loop_population(2.0, 4, 2.0) == 2 * closed_loop_population(
            1.0, 4, 2.0
        )

    def test_think_gap_deterministic_and_positive(self):
        gaps = [think_gap(DeterministicRng(11), 500.0) for _ in range(3)]
        assert gaps[0] == gaps[1] == gaps[2] >= 1
        rng = DeterministicRng(11)
        draws = [think_gap(rng, 500.0) for _ in range(200)]
        assert all(gap >= 1 for gap in draws)
        assert 250 <= sum(draws) / len(draws) <= 1_000


class TestRunFleetShard:
    def shard(self, spec="F+P+M+A", **overrides):
        fields = dict(
            service_cycles=synthetic_cycles(),
            seed=7,
            shard_index=0,
            tenants=(0, 1, 2, 3),
            num_tenants=4,
            load=0.8,
            load_profile="poisson",
            client="closed_loop",
            num_cores=2,
            num_requests=80,
            queue_depth=8,
            admission="drop_on_full",
            slo_cycles=20_000,
            think_factor=2.0,
        )
        fields.update(overrides)
        return run_fleet_shard(config_for_spec(spec), "affinity", **fields)

    def test_bit_identical_repeats_and_roundtrip(self):
        first = self.shard()
        second = self.shard()
        assert first.to_dict() == second.to_dict()
        assert (
            ShardOutcome.from_dict(json.loads(json.dumps(first.to_dict()))).to_dict()
            == first.to_dict()
        )

    def test_budget_and_counter_consistency(self):
        outcome = self.shard()
        assert outcome.offered == 80
        assert (
            outcome.admitted
            == outcome.offered
            - outcome.dropped_queue_full
            - outcome.rejected_deadline
        )
        assert outcome.completed == outcome.admitted == len(outcome.latencies)
        assert outcome.slo_met + outcome.deadline_misses == outcome.completed
        assert outcome.queue_peak <= 8
        assert 0.0 < outcome.utilization <= 1.0

    def test_empty_shard_and_zero_budget(self):
        assert self.shard(tenants=()).completed == 0
        outcome = self.shard(num_requests=0)
        assert outcome.offered == outcome.completed == 0
        assert outcome.utilization == 0.0

    def test_open_and_closed_loop_differ_but_share_the_budget(self):
        closed = self.shard()
        open_loop = self.shard(client="open_loop")
        assert open_loop.offered == closed.offered == 80
        assert open_loop.latencies != closed.latencies

    def test_tiny_queue_sheds_load_closed_loop_still_terminates(self):
        outcome = self.shard(queue_depth=1, load=3.0)
        # Rejected closed-loop clients think and retry, so the full
        # budget is still offered and the run terminates.
        assert outcome.offered == 80
        assert outcome.dropped_queue_full > 0

    def test_deadline_admission_reject_or_miss_accounting(self):
        outcome = self.shard(admission="deadline", slo_cycles=6_000, load=2.0)
        # A tight SLO under overload must shed or miss, never both zero.
        assert outcome.rejected_deadline > 0
        assert outcome.slo_met + outcome.deadline_misses == outcome.completed

    def test_purge_charged_only_on_flush_machines(self):
        secured = self.shard(policy_spec := "F+P+M+A")
        assert secured.charged_purge_cycles > 0, policy_spec
        base = self.shard(spec="BASE")
        assert base.charged_purge_cycles == 0
        assert base.charged_scrub_cycles == 0

    def test_churn_teardown_charges_wipe_and_measurement(self):
        secured = self.shard(churn_every=5)
        assert secured.charged_scrub_cycles > 0
        assert secured.charged_wipe_cycles > 0
        assert secured.charged_measurement_cycles > 0
        base = self.shard(spec="BASE", churn_every=5)
        assert base.charged_wipe_cycles == 0
        assert base.charged_measurement_cycles == 0
        # The wipe charge is the knob's to disable, independently of
        # measurement.
        no_wipe = self.shard(churn_every=5, dram_wipe_bytes_per_cycle=0)
        assert no_wipe.charged_wipe_cycles == 0
        assert no_wipe.charged_measurement_cycles > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="load must be positive"):
            self.shard(load=0.0)
        with pytest.raises(ConfigurationError, match="queue_depth must be positive"):
            self.shard(queue_depth=0)
        with pytest.raises(ConfigurationError, match="slo_cycles must be positive"):
            self.shard(slo_cycles=0)
        with pytest.raises(ConfigurationError, match="missing benchmarks"):
            self.shard(service_cycles={})


class TestEngineRequests:
    def test_cache_key_distinguishes_every_fleet_axis(self):
        base = small_request()
        variations = [
            small_request(spec="BASE"),
            small_request(seed=8),
            small_request(policy="fifo"),
            small_request(router="least_loaded"),
            small_request(admission="deadline"),
            small_request(client="open_loop"),
            small_request(load=0.9),
            small_request(load_profile="bursty"),
            small_request(num_shards=3),
            small_request(shard_cores=3),
            small_request(num_tenants=5),
            small_request(num_requests=61),
            small_request(queue_depth=9),
            small_request(slo_factor=9.0),
            small_request(think_factor=1.5),
            small_request(churn_every=4),
            small_request(churn_every=4, dram_wipe_bytes_per_cycle=32),
            small_request(churn_every=4, measurement_cycles_per_page=1),
        ]
        keys = {base.cache_key()}
        keys.update(variation.cache_key() for variation in variations)
        assert len(keys) == len(variations) + 1

    def test_service_cycles_do_not_change_the_key(self):
        request = small_request()
        assert priced(request).cache_key() == request.cache_key()

    def test_shard_request_payload_roundtrip(self):
        request = small_request(churn_every=3, router="least_loaded")
        plan = priced(request).shard_plan(synthetic_cycles())
        shard_request = plan.shard_requests[0]
        assert FleetShardRequest.from_payload(shard_request.to_payload()) == (
            shard_request
        )
        assert shard_request.cache_key() != plan.shard_requests[1].cache_key()

    def test_shard_plan_partitions_tenants_and_budget(self):
        request = small_request(num_tenants=6, num_requests=62, num_shards=2)
        plan = request.shard_plan(synthetic_cycles(6))
        assert len(plan.assignment) == 6
        placed = [
            tenant
            for shard in range(request.num_shards)
            for tenant in plan.shard_tenants(shard)
        ]
        assert sorted(placed) == list(range(6))
        assert (
            sum(shard.num_requests for shard in plan.shard_requests)
            == request.num_requests
        )
        for shard_request in plan.shard_requests:
            # The shard's cycle table is restricted to its own tenants.
            benchmarks = tenant_benchmarks(6)
            needed = {benchmarks[tenant] for tenant in shard_request.tenants}
            assert set(dict(shard_request.service_cycles)) == needed

    def test_execute_fleet_request_is_deterministic(self):
        request = priced(small_request())
        first = execute_fleet_request(request)
        second = execute_fleet_request(request)
        assert first.to_dict() == second.to_dict()
        assert (
            FleetOutcome.from_dict(json.loads(json.dumps(first.to_dict()))).to_dict()
            == first.to_dict()
        )

    def test_merge_accounts_for_every_shard_and_request(self):
        request = priced(small_request(num_shards=3))
        outcome = execute_fleet_request(request)
        assert outcome.offered == SMALL["num_requests"]
        assert len(outcome.per_shard) == 3
        assert outcome.completed == sum(
            row["completed"] for row in outcome.per_shard
        )
        assert outcome.slo_cycles >= 1
        assert outcome.latency["p99"] >= outcome.latency["p50"] > 0

    def test_resolve_fleet_cycles_covers_all_tenant_benchmarks(self):
        request = small_request(num_requests=4, instructions=400)
        cycles = resolve_fleet_cycles(request)
        assert set(cycles) == set(tenant_benchmarks(request.num_tenants))
        assert all(value > 0 for value in cycles.values())

    def test_spec_validation_and_size(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            FleetSpec.create(router="random")
        with pytest.raises(ValueError, match="unknown admission policy"):
            FleetSpec.create(admission="lottery")
        with pytest.raises(ValueError, match="unknown client model"):
            FleetSpec.create(client="half_open")
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            FleetSpec.create(policy="round-robin")
        with pytest.raises(ValueError, match="unknown load profile"):
            FleetSpec.create(load_profile="weekend")
        with pytest.raises(ValueError, match="must not be empty"):
            FleetSpec.create(loads=[])
        with pytest.raises(ValueError, match="loads must be positive"):
            FleetSpec.create(loads=[0.0])
        with pytest.raises(ValueError, match="num_shards must be positive"):
            FleetSpec.create(num_shards=0)
        with pytest.raises(ValueError, match="queue_depth must be positive"):
            FleetSpec.create(queue_depth=0)
        with pytest.raises(ValueError, match="slo_factor must be positive"):
            FleetSpec.create(slo_factor=0.0)
        with pytest.raises(ValueError, match="think_factor must be non-negative"):
            FleetSpec.create(think_factor=-1.0)
        spec = FleetSpec.create(
            variants=["BASE", "FLUSH"], loads=[0.5, 0.9, 1.3], seeds=[1, 2]
        )
        assert spec.size == 2 * 3 * 2
        assert len(spec.requests()) == spec.size


class TestSessionFleet:
    @pytest.fixture()
    def request_fields(self):
        return dict(
            variants=["BASE", "F+P+M+A"],
            num_shards=2,
            shard_cores=2,
            num_tenants=4,
            requests=60,
            instructions=1_500,
        )

    def test_entries_outcomes_and_admission_audit(self, request_fields):
        session = Session(ResultStore.in_memory())
        result = session.run(FleetRequest(**request_fields))
        assert len(result.entries) == 2
        assert result.cold_count == 2
        assert [outcome.variant for outcome in result.fleet_outcomes] == [
            "BASE",
            "F+P+M+A",
        ]
        for entry in result.entries:
            audit = entry.provenance.purge
            assert audit["offered"] == 60
            assert len(audit["per_shard"]) == 2
            assert (
                audit["admitted"]
                == audit["offered"]
                - audit["dropped_queue_full"]
                - audit["rejected_deadline"]
            )

    def test_warm_start_from_disk(self, request_fields, tmp_path):
        store_dir = tmp_path / "cache"
        cold = Session(ResultStore(store_dir)).run(FleetRequest(**request_fields))
        warm_session = Session(ResultStore(store_dir))
        warm = warm_session.run(FleetRequest(**request_fields))
        assert warm.warm_count == 2
        # Nothing simulated on the warm pass: cycle table, shard
        # documents, and fleet documents all come off disk.
        assert warm_session.store.misses == 0
        assert [entry.value.to_dict() for entry in warm] == [
            entry.value.to_dict() for entry in cold
        ]

    def test_serial_equals_parallel(self, request_fields):
        serial = Session(ResultStore.in_memory(), jobs=1).run(
            FleetRequest(**request_fields)
        )
        parallel = Session(ResultStore.in_memory(), jobs=3).run(
            FleetRequest(**request_fields)
        )
        assert [entry.value.to_dict() for entry in serial] == [
            entry.value.to_dict() for entry in parallel
        ]

    def test_open_vs_closed_loop_are_distinct_deterministic_runs(self, request_fields):
        session = Session(ResultStore.in_memory())
        closed = session.run(FleetRequest(client="closed_loop", **request_fields))
        open_loop = session.run(FleetRequest(client="open_loop", **request_fields))
        closed_again = session.run(FleetRequest(client="closed_loop", **request_fields))
        assert closed_again.warm_count == 2
        assert [entry.value.to_dict() for entry in closed] == [
            entry.value.to_dict() for entry in closed_again
        ]
        for one, other in zip(closed.fleet_outcomes, open_loop.fleet_outcomes):
            assert one.variant == other.variant
            assert one.latency != other.latency

    def test_goodput_sweep_and_saturation_point(self, request_fields):
        fields = dict(request_fields)
        fields["variants"] = ["BASE"]
        session = Session(ResultStore.in_memory(), jobs=2)
        result = session.run(FleetRequest(loads=[0.3, 0.9, 3.0], **fields))
        rows = fleet_goodput_rows(result.fleet_outcomes)
        assert len(rows) == 3
        by_load = {row["load"]: row for row in rows}
        # More offered load means more concurrency until saturation:
        # goodput must rise from the underloaded point.
        assert by_load[0.9]["goodput_rpmc"] > by_load[0.3]["goodput_rpmc"]
        saturation = fleet_saturation_points(rows)
        best = max(rows, key=lambda row: (row["goodput_rpmc"], -row["load"]))
        assert saturation == {"BASE": best["load"]}

    def test_figures_rows_and_table_render(self, request_fields):
        session = Session(ResultStore.in_memory())
        result = session.run(FleetRequest(**request_fields))
        rows = fleet_goodput_rows(result.fleet_outcomes)
        assert len(rows) == 2
        table = format_fleet_table(FLEET_TABLE_TITLE, rows)
        assert "variant" in table and "good/Mcyc" in table and "p99" in table
        assert rows[0]["router"] == "consistent_hash"
        assert rows[0]["offered"] == 60


class TestFleetCli:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        output = capsys.readouterr().out
        return code, output

    def fleet_argv(self, tmp_path, *extra):
        return (
            "fleet",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--variants",
            "BASE",
            "F+P+M+A",
            "--shards",
            "2",
            "--shard-cores",
            "2",
            "--tenants",
            "4",
            "--requests",
            "60",
            "--instructions",
            "1500",
            *extra,
        )

    def test_json_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = self.fleet_argv(tmp_path, "--json")
        code, cold_output = self.run_cli(capsys, *argv)
        assert code == 0
        cold = json.loads(cold_output)
        assert cold["command"] == "fleet"
        assert cold["cache"]["runs_simulated"] > 0
        assert len(cold["entries"]) == 2
        code, warm_output = self.run_cli(capsys, *argv)
        assert code == 0
        warm = json.loads(warm_output)
        assert warm["cache"]["runs_simulated"] == 0
        assert warm["cache"]["warm_from_disk"] > 0
        assert [entry["outcome"] for entry in warm["entries"]] == [
            entry["outcome"] for entry in cold["entries"]
        ]
        by_variant = {entry["variant"]: entry for entry in cold["entries"]}
        secured = by_variant["F+P+M+A"]["outcome"]
        assert sum(row["charged_purge_cycles"] for row in secured["per_shard"]) > 0
        base = by_variant["BASE"]["outcome"]
        assert sum(row["charged_purge_cycles"] for row in base["per_shard"]) == 0
        assert by_variant["BASE"]["admission"]["offered"] == 60

    def test_table_output_with_saturation_points(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, output = self.run_cli(
            capsys,
            *self.fleet_argv(tmp_path, "--load", "0.5", "1.0", "--router", "least_loaded"),
        )
        assert code == 0
        assert "Fleet serving" in output
        assert "saturation" in output
        assert "least_loaded" in output or "good/Mcyc" in output

    def test_unknown_registry_names_rejected(self, capsys):
        assert cli_main(["fleet", "--router", "random"]) == 2
        assert "unknown routing policy" in capsys.readouterr().err
        assert cli_main(["fleet", "--admission", "lottery"]) == 2
        assert "unknown admission policy" in capsys.readouterr().err
        assert cli_main(["fleet", "--client", "half_open"]) == 2
        assert "unknown client model" in capsys.readouterr().err
