"""The daemon: HTTP API over one session, and store concurrency.

Server tests run the real :class:`ReproDaemonServer` in-process on an
ephemeral port and talk to it through :class:`DaemonClient` — the same
stack ``repro-bench serve --daemon`` and ``--remote`` use, minus the
process boundary.  The store contention test crosses a real process
boundary: concurrent writers hammer one cache directory and every
entry must parse afterwards (atomic replace + per-entry locks).
"""

import json
import multiprocessing
import threading

import pytest

from repro.analysis.store import ResultStore
from repro.api import Session, SweepRequest, WorkloadRequest, result_to_wire
from repro.cli import main as cli_main
from repro.daemon import DaemonClient, DaemonError, JobRegistry, ReproDaemonServer

SWEEP_FIELDS = {
    "variants": ("BASE", "FLUSH"),
    "benchmarks": ("gcc",),
    "seeds": (1,),
    "instructions": 2000,
}


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    session = Session(
        ResultStore(tmp_path_factory.mktemp("daemon_cache")), jobs=2
    )
    server = ReproDaemonServer(("127.0.0.1", 0), session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(daemon):
    return DaemonClient(f"127.0.0.1:{daemon.server_port}")


class TestEndpoints:
    def test_health_document(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"]["schema_version"]
        assert health["workers"]["jobs"] == 2
        assert set(health["jobs"]) == {"total", "by_status"}
        gate = health["perf_gate"]
        assert "baseline_present" in gate and "max_regression_percent" in gate

    def test_registries_document(self, client):
        registries = client.registries()
        assert set(registries) == {
            "mitigations",
            "named_variants",
            "scenarios",
            "policies",
            "routers",
            "admission_policies",
            "client_models",
            "benchmarks",
        }
        assert "FLUSH" in registries["mitigations"]
        assert registries["named_variants"]["BASE"] == []
        assert "gcc" in registries["benchmarks"]

    def test_unknown_path_lists_endpoints(self, client):
        with pytest.raises(DaemonError, match="404"):
            client._request("GET", "/v1/nope")

    def test_unknown_job_is_404(self, client):
        with pytest.raises(DaemonError, match="unknown job"):
            client.job("job-999")


class TestRun:
    def test_http_sweep_bit_identical_to_local(self, client):
        request = SweepRequest(**SWEEP_FIELDS)
        remote = client.run(request)
        local = Session(ResultStore.in_memory(), jobs=2).run(request)
        remote_doc, local_doc = result_to_wire(remote), result_to_wire(local)
        remote_doc.pop("wall_time_seconds")
        local_doc.pop("wall_time_seconds")
        assert json.dumps(remote_doc, sort_keys=True) == json.dumps(
            local_doc, sort_keys=True
        )

    def test_second_submission_is_warm(self, client):
        request = SweepRequest(**SWEEP_FIELDS)
        client.run(request)
        before = client.health()["store"]
        again = client.run(request)
        after = client.health()["store"]
        assert after["misses"] == before["misses"]  # zero new simulations
        assert all(entry.provenance.origin == "warm" for entry in again)

    def test_async_job_lifecycle(self, client):
        job_id = client.submit(WorkloadRequest(benchmark="gcc", instructions=2000))
        snapshot = client.wait(job_id, timeout_seconds=120)
        assert snapshot["status"] == "done"
        assert snapshot["kind"] == "workload"
        assert snapshot["result"]["wire_version"] == 1
        progress = snapshot["progress"]
        assert set(progress) == {"reused_in_memory", "warm_from_disk", "runs_simulated"}
        assert client.job(job_id)["status"] == "done"

    def test_bad_wire_document_is_400(self, client):
        with pytest.raises(DaemonError, match="400.*unknown request kind"):
            client.run_wire({"wire_version": 1, "kind": "banquet", "fields": {}})

    def test_unsatisfiable_request_is_400(self, client):
        document = SweepRequest(benchmarks=("not_a_benchmark",)).to_wire()
        with pytest.raises(DaemonError, match="400"):
            client.run_wire(document)

    def test_invalid_json_body_is_400(self, client):
        import urllib.request

        http_request = urllib.request.Request(
            f"{client.base_url}/v1/run", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http_request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_mode_is_400(self, client):
        with pytest.raises(DaemonError, match="unknown mode"):
            client._request(
                "POST", "/v1/run?mode=later", SweepRequest(**SWEEP_FIELDS).to_wire()
            )


class TestCliRemote:
    def test_remote_sweep_json_reports_remote_not_cache(self, daemon, capsys):
        address = f"127.0.0.1:{daemon.server_port}"
        code = cli_main(
            [
                "sweep",
                "--remote",
                address,
                "--variants",
                "BASE",
                "FLUSH",
                "--benchmarks",
                "gcc",
                "--instructions",
                "2000",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["cache"] == {"remote": address}
        assert {entry["variant"] for entry in document["entries"]} == {"BASE", "FLUSH"}

    def test_remote_table_footer(self, daemon, capsys):
        address = f"127.0.0.1:{daemon.server_port}"
        code = cli_main(
            ["sweep", "--remote", address, "--variants", "BASE", "--benchmarks", "gcc",
             "--instructions", "2000"]
        )
        assert code == 0
        assert f"remote: {address}" in capsys.readouterr().out

    def test_unreachable_daemon_exits_1(self, capsys):
        code = cli_main(
            ["sweep", "--remote", "127.0.0.1:9", "--benchmarks", "gcc"]
        )
        assert code == 1
        assert "cannot reach daemon" in capsys.readouterr().err


class TestJobRegistry:
    def test_ids_are_sequential(self):
        registry = JobRegistry()
        done = threading.Event()
        ids = [registry.submit("workload", lambda job: done.wait(5) or {}) for _ in range(3)]
        done.set()
        assert ids == ["job-1", "job-2", "job-3"]

    def test_error_surfaces_in_snapshot(self):
        registry = JobRegistry()

        def explode(job):
            raise RuntimeError("boom")

        job_id = registry.submit("sweep", explode)
        for _ in range(100):
            snapshot = registry.snapshot(job_id)
            if snapshot["status"] == "error":
                break
            threading.Event().wait(0.01)
        assert snapshot["status"] == "error"
        assert "RuntimeError: boom" in snapshot["error"]


def _hammer_store(directory: str, worker: int, keys: int) -> None:
    store = ResultStore(directory)
    for index in range(keys):
        # Every worker writes every key, so replaces genuinely overlap.
        store.put_payload(
            "contend",
            f"key-{index}",
            {"worker": worker, "index": index, "blob": "x" * 4096},
        )


class TestStoreContention:
    def test_concurrent_writers_leave_no_torn_entries(self, tmp_path):
        processes = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(tmp_path), worker, 8)
            )
            for worker in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        reader = ResultStore(tmp_path)
        for index in range(8):
            payload = reader.get_payload("contend", f"key-{index}")
            # Whichever writer won, the entry is one writer's complete
            # document — never an interleaving of two.
            assert payload is not None
            assert payload["index"] == index
            assert payload["worker"] in range(4)
            assert payload["blob"] == "x" * 4096
        stats = reader.stats()
        assert stats["disk_entries"].get("contend") == 8

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_payload("contend", "key-0", {"fine": True})
        (path,) = [p for p in tmp_path.iterdir() if not p.name.startswith(".")]
        path.write_text("{truncated")
        fresh = ResultStore(tmp_path)
        assert fresh.get_payload("contend", "key-0") is None
        assert not path.exists()  # dropped, so the next write starts clean
