"""The observability layer: tracing inertness, metrics, export, CLI.

The core contract under test is that tracing is *inert*: outcomes and
cache keys are bit-identical with tracing on or off, serial and
parallel runs produce the same simulated-cycle span set, and the
``--trace`` flag changes nothing on stdout.  The metrics registry is
tested for its determinism guarantees (iteration order, idempotent
registration, Prometheus text shape) and the daemon's ``/v1/metrics``
surface for agreement with ``/v1/health``.
"""

import json
import logging
import threading
import time
import urllib.request

import pytest

from repro.analysis.engine import ParallelRunner, ServiceSpec
from repro.analysis.figures import latency_breakdown_rows
from repro.analysis.store import ResultStore
from repro.api import Session
from repro.cli import main as cli_main
from repro.common.log import configure_logging
from repro.daemon import ReproDaemonServer
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active_tracer,
    chrome_trace_document,
    load_trace,
    set_active_tracer,
    tracing,
    validate_chrome_trace,
    wall_span,
    write_chrome_trace,
)

SPEC_FIELDS = dict(
    policies=["fifo"],
    loads=[0.7],
    seeds=[3],
    num_cores=2,
    num_tenants=2,
    num_requests=15,
    instructions=3000,
)


def run_service_spec(jobs, tracer=None, directory=None):
    spec = ServiceSpec.create(**SPEC_FIELDS)
    store = ResultStore.in_memory() if directory is None else ResultStore(directory)
    runner = ParallelRunner(store=store, jobs=jobs)
    if tracer is None:
        pairs = runner.run_service_spec(spec)
    else:
        with tracing(tracer):
            pairs = runner.run_service_spec(spec)
    return [(request.cache_key(), outcome.to_dict()) for request, outcome in pairs]


# ----------------------------------------------------------------------
# Tracing inertness


class TestInertness:
    def test_outcomes_and_cache_keys_identical_with_tracing(self):
        untraced = run_service_spec(jobs=1)
        traced = run_service_spec(jobs=1, tracer=Tracer())
        assert untraced == traced

    def test_store_bytes_identical_with_tracing(self, tmp_path):
        run_service_spec(jobs=1, directory=tmp_path / "plain")
        run_service_spec(jobs=1, tracer=Tracer(), directory=tmp_path / "traced")
        plain = sorted((tmp_path / "plain").glob("*.json"))
        traced = sorted((tmp_path / "traced").glob("*.json"))
        assert [path.name for path in plain] == [path.name for path in traced]
        for plain_path, traced_path in zip(plain, traced):
            assert plain_path.read_bytes() == traced_path.read_bytes()

    def test_serial_and_parallel_produce_same_sim_span_set(self):
        serial, parallel = Tracer(), Tracer()
        assert run_service_spec(jobs=1, tracer=serial) == run_service_spec(
            jobs=2, tracer=parallel
        )
        serial_spans = [span.sort_key() for span in serial.sim_spans()]
        parallel_spans = [span.sort_key() for span in parallel.sim_spans()]
        assert serial_spans and serial_spans == parallel_spans

    def test_no_tracer_active_by_default(self):
        assert active_tracer() is None

    def test_wall_span_is_noop_without_tracer(self):
        with wall_span("anything", track="t") as span:
            pass
        tracer = Tracer()
        previous = set_active_tracer(tracer)
        try:
            with wall_span("real", track="t", detail=1):
                pass
        finally:
            set_active_tracer(previous)
        assert len(tracer) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "real" and recorded.category == "wall"
        assert span is not recorded  # the no-op singleton records nothing


# ----------------------------------------------------------------------
# Span export


class TestExport:
    def make_tracer(self):
        tracer = Tracer()
        tracer.sim_span("execute", "core-0", 10, 30, tenant=1)
        tracer.sim_span("queue", "queue", 0, 10, tenant=1)
        tracer.sim_event("complete", "core-0", 30, tenant=1)
        return tracer

    def test_document_validates_and_is_deterministic(self):
        first = chrome_trace_document(self.make_tracer().spans)
        second = chrome_trace_document(self.make_tracer().spans)
        assert validate_chrome_trace(first) == []
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", self.make_tracer().spans)
        document = load_trace(path)
        assert validate_chrome_trace(document) == []
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "execute",
            "queue",
            "complete",
        }

    def test_validate_flags_structural_problems(self):
        assert validate_chrome_trace([]) == ["trace document is not a JSON object"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": 3, "pid": 1, "tid": 1}]}
        )
        assert any("name is not a string" in problem for problem in problems)

    def test_span_roundtrip_through_dicts(self):
        tracer = self.make_tracer()
        absorbed = Tracer()
        absorbed.absorb(tracer.span_dicts())
        original = [span.sort_key() for span in tracer.sorted_spans()]
        restored = [span.sort_key() for span in absorbed.sorted_spans()]
        assert original == restored

    def test_breakdown_rows_summarise_by_phase(self):
        document = chrome_trace_document(self.make_tracer().spans)
        rows = latency_breakdown_rows(document, category="sim")
        by_phase = {row["phase"]: row for row in rows}
        assert by_phase["execute"]["total"] == 20.0
        assert by_phase["queue"]["total"] == 10.0
        assert by_phase["execute"]["share"] == pytest.approx(20.0 / 30.0)
        assert [row["total"] for row in rows] == sorted(
            (row["total"] for row in rows), reverse=True
        )


# ----------------------------------------------------------------------
# Metrics registry


class TestMetrics:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "a counter").inc(3)
        registry.gauge("repro_g", "a gauge").set(1.5)
        registry.histogram("repro_h", "a histogram", buckets=(1.0, 10.0)).observe(2.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_c_total counter" in text
        assert "repro_c_total 3" in text
        assert "repro_g 1.5" in text
        assert 'repro_h_bucket{le="10"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 2" in text and "repro_h_count 1" in text

    def test_families_iterate_in_sorted_name_order(self):
        registry = MetricsRegistry()
        for name in ("repro_z", "repro_a", "repro_m"):
            registry.counter(name)
        assert [family.name for family in registry.families()] == [
            "repro_a",
            "repro_m",
            "repro_z",
        ]

    def test_labels_fan_out_and_sort(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_http_total", labels=("method", "status"))
        family.labels(method="POST", status=200).inc()
        family.labels(method="GET", status=200).inc(2)
        text = registry.render_prometheus()
        get_line = 'repro_http_total{method="GET",status="200"} 2'
        post_line = 'repro_http_total{method="POST",status="200"} 1'
        assert text.index(get_line) < text.index(post_line)
        assert registry.value("repro_http_total", method="GET", status=200) == 2.0

    def test_reregistration_is_idempotent_but_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_dup", "help")
        assert registry.counter("repro_dup") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_dup")

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("repro_neg").inc(-1)
        family = registry.counter("repro_lbl", labels=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(other="x")
        with pytest.raises(ValueError, match="labeled"):
            family.inc()

    def test_callback_gauge_and_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("repro_live", labels=("kind",)).set_callback(
            lambda: {("run",): 2.0, ("fleet",): 1.0}
        )
        registry.counter("repro_plain").inc(5)
        snapshot = registry.snapshot()
        assert snapshot["repro_plain"] == 5
        assert snapshot["repro_live"] == {"kind=fleet": 1.0, "kind=run": 2.0}


# ----------------------------------------------------------------------
# Daemon surface


@pytest.fixture(scope="module")
def obs_daemon(tmp_path_factory):
    session = Session(ResultStore(tmp_path_factory.mktemp("obs_cache")), jobs=2)
    server = ReproDaemonServer(("127.0.0.1", 0), session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def fetch(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.server_port}{path}"
    ) as response:
        return response.headers, response.read().decode("utf-8")


class TestDaemonMetrics:
    def test_metrics_exposition_parses_and_covers_subsystems(self, obs_daemon):
        headers, text = fetch(obs_daemon, "/v1/metrics")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        samples = {}
        for line in text.splitlines():
            assert line, "no blank lines inside the exposition"
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        assert samples["repro_workers_jobs"] == 2.0
        assert "repro_jobs_total" in samples
        assert "repro_store_memory_runs" in samples
        assert "repro_simulations_total" in samples
        assert "repro_store_misses_total" in samples
        assert any(name.startswith("repro_http_request_wall_ms") for name in samples)

    def test_health_and_metrics_agree(self, obs_daemon):
        _, health_text = fetch(obs_daemon, "/v1/health")
        health = json.loads(health_text)
        state = obs_daemon.state
        assert health["workers"]["jobs"] == state.metrics.value("repro_workers_jobs")
        assert health["jobs"]["total"] == state.metrics.value("repro_jobs_total")

    def test_http_counters_track_requests(self, obs_daemon):
        state = obs_daemon.state
        before = state.metrics.value(
            "repro_http_requests_total", method="GET", status=200
        )
        fetch(obs_daemon, "/v1/health")
        # The counter increments after the response body is written;
        # briefly wait for the handler thread to get there.
        after = before
        for _ in range(100):
            after = state.metrics.value(
                "repro_http_requests_total", method="GET", status=200
            )
            if after > before:
                break
            time.sleep(0.01)
        assert after == before + 1

    def test_request_log_is_one_structured_line(self, obs_daemon, caplog):
        with caplog.at_level(logging.INFO, logger="repro.daemon"):
            fetch(obs_daemon, "/v1/health")
            # The structured line is emitted by the handler thread after
            # the response body is written, so briefly wait for it.
            for _ in range(100):
                if caplog.records:
                    break
                time.sleep(0.01)
        lines = [
            record.getMessage()
            for record in caplog.records
            if record.name == "repro.daemon"
        ]
        assert len(lines) == 1
        assert lines[0].startswith("method=GET path=/v1/health status=200 wall_ms=")


# ----------------------------------------------------------------------
# CLI surface


SERVE_ARGS = [
    "serve",
    "--policy",
    "fifo",
    "--load",
    "0.7",
    "--requests",
    "10",
    "--tenants",
    "2",
    "--num-cores",
    "2",
    "--instructions",
    "2000",
    "--no-cache",
    "--json",
]


class TestCli:
    def test_trace_flag_leaves_stdout_identical(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(SERVE_ARGS) == 0
        untraced = capsys.readouterr().out
        trace_path = tmp_path / "serve.trace.json"
        assert cli_main(SERVE_ARGS + ["--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == untraced
        assert "trace:" in captured.err
        document = load_trace(trace_path)
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["command"] == "serve"
        assert document["otherData"]["sim_spans"] > 0

    def test_trace_summary_and_validate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace_path = tmp_path / "t.json"
        assert cli_main(SERVE_ARGS + ["--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "validate", str(trace_path)]) == 0
        assert "valid" in capsys.readouterr().out
        assert cli_main(["trace", "summary", str(trace_path)]) == 0
        table = capsys.readouterr().out
        assert "Trace latency breakdown" in table
        assert "execute" in table
        assert cli_main(["trace", "summary", "--category", "sim", str(trace_path)]) == 0
        assert "wall" not in capsys.readouterr().out.split("\n", 3)[3]

    def test_trace_validate_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert cli_main(["trace", "validate", str(bad)]) == 1
        assert "not a string" in capsys.readouterr().err

    def test_trace_refused_with_remote(self, capsys):
        assert (
            cli_main(
                ["serve", "--remote", "127.0.0.1:1", "--trace", "x.json"]
            )
            == 2
        )
        assert "--remote" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Logging setup


class TestLogging:
    def test_returns_numeric_level(self):
        assert configure_logging("debug") == logging.DEBUG
        assert configure_logging("warning") == logging.WARNING

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("chatty")

    def test_repeat_calls_do_not_stack_handlers(self):
        configure_logging("info")
        count = len(logging.getLogger().handlers)
        configure_logging("debug")
        assert len(logging.getLogger().handlers) == count
        configure_logging("warning")
