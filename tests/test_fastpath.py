"""Fast-path == slow-path equivalence suite.

The simulator ships two kernels: the optimized fast path (default) and
the original reference implementation behind ``REPRO_SLOW_PATH=1`` (see
:mod:`repro.common.fastpath`).  These tests are the contract that the
optimization work never changes results: for every paper variant and for
composed mitigation specs, the two paths must produce bit-identical
stats (cycles, instructions, every counter and histogram) and identical
content-hash cache keys.
"""

import pytest

from repro.analysis.engine import EvaluationSettings, execute_request, request_for
from repro.attacks.scenarios import run_scenario
from repro.common.fastpath import SLOW_PATH_ENV_VAR, slow_path_enabled
from repro.core.serialization import config_digest, run_to_dict
from repro.core.variants import Variant, all_variants, config_for_variant, parse_variant

SETTINGS = EvaluationSettings(instructions=2_000, seed=2019)

#: Every paper variant plus two composed mitigation specs (ISSUE 4).
EQUIVALENCE_SPECS = [variant.name for variant in all_variants()] + [
    "FLUSH+MISS",
    "PART+ARB",
]


def _execute(request, monkeypatch, *, slow):
    if slow:
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
    else:
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
    try:
        return request.cache_key(), run_to_dict(execute_request(request))
    finally:
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)


class TestSlowPathSwitch:
    def test_defaults_to_fast_path(self, monkeypatch):
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        assert not slow_path_enabled()

    def test_zero_and_empty_mean_fast(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(SLOW_PATH_ENV_VAR, value)
            assert not slow_path_enabled()

    def test_one_means_slow(self, monkeypatch):
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        assert slow_path_enabled()


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("spec", EQUIVALENCE_SPECS)
    def test_fast_equals_slow(self, spec, monkeypatch):
        request = request_for(parse_variant(spec), "hmmer", SETTINGS)
        fast_key, fast_run = _execute(request, monkeypatch, slow=False)
        slow_key, slow_run = _execute(request, monkeypatch, slow=True)
        # Cache keys hash configuration + workload parameters; the path
        # switch must not perturb them.
        assert fast_key == slow_key
        # Stats are compared field-for-field through the serialised form:
        # cycles, instructions, every counter, every histogram bucket.
        assert fast_run == slow_run

    def test_config_digest_ignores_path_switch(self, monkeypatch):
        config = config_for_variant(Variant.F_P_M_A)
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast_digest = config_digest(config)
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        assert config_digest(config) == fast_digest

    def test_multiple_benchmarks_one_variant(self, monkeypatch):
        for benchmark in ("libquantum", "mcf"):
            request = request_for(Variant.BASE, benchmark, SETTINGS)
            fast_key, fast_run = _execute(request, monkeypatch, slow=False)
            slow_key, slow_run = _execute(request, monkeypatch, slow=True)
            assert fast_key == slow_key
            assert fast_run == slow_run


class TestScenarioEquivalence:
    def test_prime_probe_outcome_identical(self, monkeypatch):
        config = config_for_variant(Variant.BASE)
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast = run_scenario("prime_probe", config, 2019, num_cores=2).to_dict()
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        slow = run_scenario("prime_probe", config, 2019, num_cores=2).to_dict()
        assert fast == slow
