"""Fast-path == slow-path equivalence suite.

The simulator ships two kernels: the optimized fast path (default) and
the original reference implementation behind ``REPRO_SLOW_PATH=1`` (see
:mod:`repro.common.fastpath`).  These tests are the contract that the
optimization work never changes results: for every paper variant and for
composed mitigation specs, the two paths must produce bit-identical
stats (cycles, instructions, every counter and histogram) and identical
content-hash cache keys.
"""

import random

import pytest

from repro.analysis.engine import (
    EvaluationSettings,
    ServiceRunRequest,
    evaluation_config,
    execute_request,
    execute_service_request,
    request_for,
)
from repro.attacks.scenarios import run_scenario, scenario_names
from repro.common.fastpath import SLOW_PATH_ENV_VAR, slow_path_enabled
from repro.core.serialization import config_digest, run_to_dict
from repro.core.variants import Variant, all_variants, config_for_variant, parse_variant

SETTINGS = EvaluationSettings(instructions=2_000, seed=2019)

#: Every paper variant plus two composed mitigation specs (ISSUE 4).
EQUIVALENCE_SPECS = [variant.name for variant in all_variants()] + [
    "FLUSH+MISS",
    "PART+ARB",
]

#: The five composable mitigations; bit i of a lattice point selects
#: ``_LATTICE_MITIGATIONS[i]``, so masks 0..31 span the full 2^5 lattice.
_LATTICE_MITIGATIONS = ("FLUSH", "PART", "MISS", "ARB", "NONSPEC")

#: Seed of the lattice sample below.  Fixed so every run (and the CI
#: slow-path spot-check leg) exercises the same points; bump it to
#: rotate the sample.
LATTICE_SAMPLE_SEED = 2019

#: How many of the 32 lattice points the equivalence sweep runs.
LATTICE_SAMPLE_SIZE = 10


def _lattice_spec(mask: int) -> str:
    members = [
        name for bit, name in enumerate(_LATTICE_MITIGATIONS) if mask & (1 << bit)
    ]
    return "+".join(members) if members else "BASE"


#: Deterministic sample of the full mitigation lattice (ISSUE: second
#: fast-path wave widened equivalence coverage beyond the paper points).
LATTICE_SPECS = sorted(
    _lattice_spec(mask)
    for mask in random.Random(LATTICE_SAMPLE_SEED).sample(range(32), LATTICE_SAMPLE_SIZE)
)


def _execute(request, monkeypatch, *, slow):
    if slow:
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
    else:
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
    try:
        return request.cache_key(), run_to_dict(execute_request(request))
    finally:
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)


class TestSlowPathSwitch:
    def test_defaults_to_fast_path(self, monkeypatch):
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        assert not slow_path_enabled()

    def test_zero_and_empty_mean_fast(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(SLOW_PATH_ENV_VAR, value)
            assert not slow_path_enabled()

    def test_one_means_slow(self, monkeypatch):
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        assert slow_path_enabled()


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("spec", EQUIVALENCE_SPECS)
    def test_fast_equals_slow(self, spec, monkeypatch):
        request = request_for(parse_variant(spec), "hmmer", SETTINGS)
        fast_key, fast_run = _execute(request, monkeypatch, slow=False)
        slow_key, slow_run = _execute(request, monkeypatch, slow=True)
        # Cache keys hash configuration + workload parameters; the path
        # switch must not perturb them.
        assert fast_key == slow_key
        # Stats are compared field-for-field through the serialised form:
        # cycles, instructions, every counter, every histogram bucket.
        assert fast_run == slow_run

    def test_config_digest_ignores_path_switch(self, monkeypatch):
        config = config_for_variant(Variant.F_P_M_A)
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast_digest = config_digest(config)
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        assert config_digest(config) == fast_digest

    def test_multiple_benchmarks_one_variant(self, monkeypatch):
        for benchmark in ("libquantum", "mcf"):
            request = request_for(Variant.BASE, benchmark, SETTINGS)
            fast_key, fast_run = _execute(request, monkeypatch, slow=False)
            slow_key, slow_run = _execute(request, monkeypatch, slow=True)
            assert fast_key == slow_key
            assert fast_run == slow_run


class TestLatticeEquivalence:
    """Fast == slow over a seeded sample of the full 2^5 lattice.

    The paper points above pin the variants the figures use; this sweep
    guards the *composition space* — any subset of the five mitigations
    must survive the fast path bit-identically, not just the published
    combinations.
    """

    @pytest.mark.parametrize("spec", LATTICE_SPECS)
    def test_lattice_point_fast_equals_slow(self, spec, monkeypatch):
        request = request_for(parse_variant(spec), "hmmer", SETTINGS)
        fast_key, fast_run = _execute(request, monkeypatch, slow=False)
        slow_key, slow_run = _execute(request, monkeypatch, slow=True)
        assert fast_key == slow_key
        assert fast_run == slow_run

    def test_sample_is_stable(self):
        # The sample doubles as the CI slow-path spot-check's workload;
        # collection must be deterministic across processes and runs.
        assert len(LATTICE_SPECS) == LATTICE_SAMPLE_SIZE
        assert LATTICE_SPECS == sorted(
            _lattice_spec(mask)
            for mask in random.Random(LATTICE_SAMPLE_SEED).sample(
                range(32), LATTICE_SAMPLE_SIZE
            )
        )


class TestScenarioEquivalence:
    def test_prime_probe_outcome_identical(self, monkeypatch):
        config = config_for_variant(Variant.BASE)
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast = run_scenario("prime_probe", config, 2019, num_cores=2).to_dict()
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        slow = run_scenario("prime_probe", config, 2019, num_cores=2).to_dict()
        assert fast == slow

    @pytest.mark.parametrize("name", scenario_names())
    def test_detailed_llc_scenarios_identical(self, name, monkeypatch):
        # The co-scheduled scenarios drive the detailed LLC arbiter,
        # whose event-batched loop skips quiescent cycles on the fast
        # path; outcomes (leakage, cycles, details) must not notice.
        config = config_for_variant(Variant.F_P_M_A)
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast = run_scenario(name, config, 2019).to_dict()
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        slow = run_scenario(name, config, 2019).to_dict()
        assert fast == slow


class TestServeEquivalence:
    def test_service_outcome_identical(self, monkeypatch):
        # Field-for-field through ServiceOutcome.to_dict(): latencies,
        # per-tenant stats, purge counts, and the embedded kernel cycle
        # resolution all ride on the fast path.
        request = ServiceRunRequest(
            policy="fifo",
            config=evaluation_config(parse_variant("F+P+M+A"), 1_000),
            seed=2019,
            num_cores=2,
            num_tenants=4,
            num_requests=40,
            instructions=1_000,
        )
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        fast_key = request.cache_key()
        fast = execute_service_request(request).to_dict()
        monkeypatch.setenv(SLOW_PATH_ENV_VAR, "1")
        slow_key = request.cache_key()
        slow = execute_service_request(request).to_dict()
        monkeypatch.delenv(SLOW_PATH_ENV_VAR, raising=False)
        assert fast_key == slow_key
        assert fast == slow
