"""Co-scheduled security scenarios: Property 1 on the shared Machine.

Covers the three layers the scenario subsystem adds: the co-scheduled
executor (functional truth from the shared LLC, timing from the detailed
pipeline), the scenario registry (leak on BASE, no leak on MI6, and the
per-defence closures), and the experiment-engine integration (cache
keys, store persistence, serial/parallel equivalence, security table).
"""

import json

import pytest

from repro.analysis.engine import (
    ParallelRunner,
    ScenarioRequest,
    ScenarioSpec,
    execute_scenario_request,
)
from repro.analysis.figures import security_leakage_table
from repro.analysis.store import ResultStore
from repro.attacks.coschedule import CoScheduledExecutor, MemOp, detailed_config_for
from repro.attacks.scenarios import (
    ATTACKER_CORE,
    ScenarioOutcome,
    build_scenario_machine,
    mi6_protection_enabled,
    run_scenario,
    scenario_names,
)
from repro.core.variants import Variant, config_for_variant
from repro.mem.arbiter import RoundRobinArbiter, TwoLevelMuxArbiter

BASE = config_for_variant(Variant.BASE)
MI6 = config_for_variant(Variant.F_P_M_A)


class TestCoScheduledExecutor:
    def test_llc_bound_accesses_run_through_the_detailed_pipeline(self):
        machine = build_scenario_machine(BASE)
        executor = CoScheduledExecutor(machine)
        base_address = machine.address_map.region_base(8)
        ops = [MemOp(base_address + index * 64, l1_bypass=True) for index in range(4)]
        done = executor.run_phase({ATTACKER_CORE: ops})
        assert len(done[ATTACKER_CORE]) == 4
        # Cold lines: every access misses and pays the DRAM latency
        # through the message-level pipeline.
        assert all(
            access.latency >= machine.config.dram.latency_cycles
            for access in done[ATTACKER_CORE]
        )
        assert machine.stats.value("llc_detail.pipeline_entries") >= 4

    def test_l1_hits_complete_locally_without_llc_traffic(self):
        machine = build_scenario_machine(BASE)
        executor = CoScheduledExecutor(machine)
        address = machine.address_map.region_base(8)
        executor.run_phase({ATTACKER_CORE: [MemOp(address)]})
        entries_before = machine.stats.value("llc_detail.pipeline_entries")
        done = executor.run_phase({ATTACKER_CORE: [MemOp(address)]})
        access = done[ATTACKER_CORE][0]
        assert access.l1_hit
        assert access.latency <= machine.core(ATTACKER_CORE).hierarchy.l1d.hit_latency
        assert machine.stats.value("llc_detail.pipeline_entries") == entries_before

    def test_mi6_protection_suppresses_cross_domain_access(self):
        machine = build_scenario_machine(MI6)
        victim_address = machine.address_map.region_base(9)
        done = CoScheduledExecutor(machine).run_phase(
            {ATTACKER_CORE: [MemOp(victim_address)]}
        )
        assert done[ATTACKER_CORE][0].blocked
        assert not mi6_protection_enabled(BASE)
        assert mi6_protection_enabled(MI6)

    def test_arbiter_matches_machine_organisation(self):
        assert not detailed_config_for(BASE).secure
        assert detailed_config_for(MI6).secure
        # A partial LLC defence leaves the other coupling open, so
        # MISS-only and ARB-only conservatively get the baseline
        # organisation (the detailed model is Figure 2 xor Figure 3).
        assert not detailed_config_for(config_for_variant(Variant.MISS)).secure
        assert not detailed_config_for(config_for_variant(Variant.ARB)).secure
        baseline = CoScheduledExecutor(build_scenario_machine(BASE))
        secure = CoScheduledExecutor(build_scenario_machine(MI6))
        assert isinstance(baseline.detailed._arbiter, TwoLevelMuxArbiter)
        assert isinstance(secure.detailed._arbiter, RoundRobinArbiter)

    def test_phases_share_machine_state_and_clock(self):
        machine = build_scenario_machine(BASE)
        executor = CoScheduledExecutor(machine)
        address = machine.address_map.region_base(8)
        executor.run_phase({ATTACKER_CORE: [MemOp(address, l1_bypass=True)]})
        first_phase_end = executor.cycle
        done = executor.run_phase({ATTACKER_CORE: [MemOp(address, l1_bypass=True)]})
        assert executor.cycle > first_phase_end
        # The second phase sees the line the first phase installed.
        assert done[ATTACKER_CORE][0].llc_hit


class TestScenarioProperty1:
    @pytest.mark.parametrize("name", scenario_names())
    def test_channel_open_on_base(self, name):
        outcome = run_scenario(name, BASE, seed=2019)
        assert outcome.leaked
        assert 0 < outcome.leaked_bits <= outcome.total_bits

    @pytest.mark.parametrize("name", scenario_names())
    def test_channel_closed_on_mi6(self, name):
        outcome = run_scenario(name, MI6, seed=2019)
        assert not outcome.leaked
        assert outcome.leaked_bits == 0

    def test_each_defence_closes_its_own_channel(self):
        part = config_for_variant(Variant.PART)
        flush = config_for_variant(Variant.FLUSH)
        # Set partitioning closes prime+probe but not the predictor residue.
        assert not run_scenario("prime_probe", part, 7).leaked
        assert run_scenario("branch_residue", part, 7).leaked
        # The purge closes the residue but not prime+probe.
        assert not run_scenario("branch_residue", flush, 7).leaked
        assert run_scenario("prime_probe", flush, 7).leaked
        # The covert channel needs BOTH LLC defences: either one alone
        # leaves the channel open (shared MSHR pool or unfair mux).
        assert run_scenario("contention", config_for_variant(Variant.MISS), 7).leaked
        assert run_scenario("contention", config_for_variant(Variant.ARB), 7).leaked

    def test_scenarios_are_deterministic(self):
        first = run_scenario("contention", BASE, seed=42)
        second = run_scenario("contention", BASE, seed=42)
        assert first == second

    def test_scans_stay_inside_small_regions(self):
        # Regions smaller than the 8 MiB scan cap: the attacker's address
        # scan must clamp to its own region instead of walking into the
        # victim's, and the verdicts must be unchanged.
        from dataclasses import replace

        from repro.mem.address import AddressMap

        small = AddressMap(dram_bytes=256 * 1024 * 1024)  # 4 MiB regions
        assert small.region_bytes < 8 * 1024 * 1024
        base = replace(BASE, address_map=small)
        mi6 = replace(MI6, address_map=small)
        assert run_scenario("prime_probe", base, 2019).leaked
        assert not run_scenario("prime_probe", mi6, 2019).leaked

    def test_unknown_scenario_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown scenario"):
            run_scenario("nope", BASE, 2019)


class TestScenarioEngine:
    def test_request_round_trips_and_keys_are_content_sensitive(self):
        request = ScenarioRequest("spectre", MI6, seed=7)
        again = ScenarioRequest.from_payload(request.to_payload())
        assert again == request
        assert again.cache_key() == request.cache_key()
        other_variant = ScenarioRequest("spectre", BASE, seed=7)
        other_seed = ScenarioRequest("spectre", MI6, seed=8)
        assert len({request.cache_key(), other_variant.cache_key(), other_seed.cache_key()}) == 3

    def test_outcome_round_trips_through_json(self):
        outcome = execute_scenario_request(ScenarioRequest("branch_residue", BASE, 2019))
        encoded = json.loads(json.dumps(outcome.to_dict()))
        assert ScenarioOutcome.from_dict(encoded) == outcome

    def test_warm_start_from_disk(self, tmp_path):
        spec = ScenarioSpec.create(scenarios=["branch_residue"], seeds=[2019])
        cold_runner = ParallelRunner(ResultStore(tmp_path))
        cold = cold_runner.run_scenarios(spec.requests())
        assert cold_runner.executed_runs == spec.size == 2
        warm_runner = ParallelRunner(ResultStore(tmp_path))
        warm = warm_runner.run_scenarios(spec.requests())
        assert warm_runner.executed_runs == 0
        assert warm_runner.warm_runs == spec.size
        assert [outcome.to_dict() for outcome in warm] == [
            outcome.to_dict() for outcome in cold
        ]

    def test_serial_and_parallel_outcomes_are_identical(self):
        spec = ScenarioSpec.create(
            scenarios=["branch_residue", "spectre"], seeds=[2019]
        )
        serial = ParallelRunner(ResultStore.in_memory(), jobs=1).run_scenarios(
            spec.requests()
        )
        parallel = ParallelRunner(ResultStore.in_memory(), jobs=2).run_scenarios(
            spec.requests()
        )
        assert [outcome.to_dict() for outcome in serial] == [
            outcome.to_dict() for outcome in parallel
        ]

    def test_spec_validates_scenario_names_and_rejects_empty(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSpec.create(scenarios=["nope"])
        with pytest.raises(ValueError, match="must not be empty"):
            ScenarioSpec.create(scenarios=[])
        spec = ScenarioSpec.create()
        assert spec.scenarios == tuple(scenario_names())
        assert spec.variants == (Variant.BASE, Variant.F_P_M_A)

    def test_security_table_reports_leak_on_base_only(self):
        title, rows = security_leakage_table(
            scenarios=("branch_residue",), store=ResultStore.in_memory()
        )
        assert "leaked bits" in title
        cells = rows["branch_residue"]
        base_leaked, base_total = map(int, cells["BASE"].split("/"))
        mi6_leaked, mi6_total = map(int, cells["F+P+M+A"].split("/"))
        assert base_leaked > 0
        assert mi6_leaked == 0
        assert base_total == mi6_total > 0
